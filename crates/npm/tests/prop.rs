//! Property-based tests for node-property map invariants.

use kimbap_comm::Cluster;
use kimbap_dist::{partition, Policy};
use kimbap_graph::{builder::from_edges, NodeId};
use kimbap_npm::{Min, NodePropMap, Npm, Sum, Variant};
use proptest::prelude::*;

/// A randomized workload: per host, a list of (key, value) reductions.
fn workload(n: u32) -> impl Strategy<Value = Vec<Vec<(u32, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((0..n, 0u64..1000), 0..120),
        3, // hosts
    )
}

fn graph(n: u32) -> kimbap_graph::Graph {
    // A ring so every node exists and has edges.
    from_edges((0..n).map(|i| (i, (i + 1) % n, 1)))
}

/// Applies a host-partitioned workload on a chosen backend and returns the
/// canonical value of every node.
fn run_min(
    variant: Variant,
    n: u32,
    loads: &[Vec<(u32, u64)>],
    threads: usize,
) -> Vec<u64> {
    let g = graph(n);
    let parts = partition(&g, Policy::EdgeCutBlocked, loads.len());
    let out = Cluster::with_threads(loads.len(), threads).run(|ctx| {
        let dg = &parts[ctx.host()];
        let mut npm: Npm<u64, Min> = Npm::with_variant(dg, ctx, Min, variant);
        npm.init_masters(&|g| g as u64 + 10_000);
        let my = &loads[ctx.host()];
        ctx.par_for(0..my.len(), |tid, range| {
            for i in range {
                let (k, v) = my[i];
                npm.reduce(tid, k, v);
            }
        });
        npm.reduce_sync(ctx);
        // Every host reads its own masters.
        dg.master_nodes()
            .map(|m| {
                let g = dg.local_to_global(m);
                (g, npm.read(g))
            })
            .collect::<Vec<(NodeId, u64)>>()
    });
    let mut vals = vec![0u64; n as usize];
    for host in out {
        for (g, v) in host {
            vals[g as usize] = v;
        }
    }
    vals
}

/// Sequential model of the same reduction.
fn model_min(n: u32, loads: &[Vec<(u32, u64)>]) -> Vec<u64> {
    let mut vals: Vec<u64> = (0..n as u64).map(|g| g + 10_000).collect();
    for host in loads {
        for &(k, v) in host {
            vals[k as usize] = vals[k as usize].min(v);
        }
    }
    vals
}

/// One multi-round program: per round, each of the 3 hosts gets a reduce
/// list and a list of keys to request (and read back after the syncs).
type Round = (Vec<Vec<(u32, u64)>>, Vec<Vec<u32>>);

fn program(n: u32) -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        (
            prop::collection::vec(prop::collection::vec((0..n, 0u64..1000), 0..60), 3),
            prop::collection::vec(prop::collection::vec(0..n, 0..20), 3),
        ),
        1..4, // rounds
    )
}

/// Differential check of a full round pipeline: every host runs the same
/// randomized reduce → reduce_sync → request → request_sync → read
/// sequence on the real backend, and every observed value must equal the
/// sequential reference model's snapshot at that round. Returns the final
/// merged canonical values for the end-of-program comparison.
fn run_program(variant: Variant, n: u32, rounds: &[Round], threads: usize) -> Vec<u64> {
    // Reference model: per-round snapshots of the canonical values.
    let mut model: Vec<u64> = (0..n as u64).map(|g| g + 10_000).collect();
    let mut snapshots: Vec<Vec<u64>> = Vec::with_capacity(rounds.len());
    for (reduces, _) in rounds {
        for host in reduces {
            for &(k, v) in host {
                model[k as usize] = model[k as usize].min(v);
            }
        }
        snapshots.push(model.clone());
    }

    let g = graph(n);
    let parts = partition(&g, Policy::EdgeCutBlocked, 3);
    let snaps = &snapshots;
    let out = Cluster::with_threads(3, threads).run(|ctx| {
        let dg = &parts[ctx.host()];
        let mut npm: Npm<u64, Min> = Npm::with_variant(dg, ctx, Min, variant);
        npm.init_masters(&|g| g as u64 + 10_000);
        for (r, (reduces, requests)) in rounds.iter().enumerate() {
            let my = &reduces[ctx.host()];
            ctx.par_for(0..my.len(), |tid, range| {
                for i in range {
                    let (k, v) = my[i];
                    npm.reduce(tid, k, v);
                }
            });
            npm.reduce_sync(ctx);
            for &k in &requests[ctx.host()] {
                npm.request(k);
            }
            npm.request_sync(ctx);
            // Requested keys and own masters must both show the model's
            // post-reduce_sync value for this round.
            for &k in &requests[ctx.host()] {
                assert_eq!(
                    npm.read(k),
                    snaps[r][k as usize],
                    "{variant}: requested key {k} wrong in round {r}"
                );
            }
            for m in dg.master_nodes() {
                let gk = dg.local_to_global(m);
                assert_eq!(
                    npm.read(gk),
                    snaps[r][gk as usize],
                    "{variant}: master {gk} wrong in round {r}"
                );
            }
        }
        dg.master_nodes()
            .map(|m| {
                let gk = dg.local_to_global(m);
                (gk, npm.read(gk))
            })
            .collect::<Vec<(NodeId, u64)>>()
    });
    let mut vals = vec![0u64; n as usize];
    for host in out {
        for (gk, v) in host {
            vals[gk as usize] = v;
        }
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_variants_match_sequential_model(loads in workload(64)) {
        let expected = model_min(64, &loads);
        for variant in [Variant::SgrOnly, Variant::SgrCf, Variant::SgrCfGar] {
            let got = run_min(variant, 64, &loads, 2);
            prop_assert_eq!(&got, &expected, "variant {} diverged", variant);
        }
    }

    #[test]
    fn thread_count_does_not_change_results(loads in workload(48)) {
        let a = run_min(Variant::SgrCfGar, 48, &loads, 1);
        let b = run_min(Variant::SgrCfGar, 48, &loads, 4);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn round_pipeline_matches_model_all_variants(
        rounds in program(56),
        threads in 1usize..9,
    ) {
        // The differential gate for the hot-path rebuild: randomized
        // reduce/request/read/sync programs observe bit-identical values
        // on every backend, at every thread count, in every round.
        let expected = {
            let mut m: Vec<u64> = (0..56u64).map(|g| g + 10_000).collect();
            for (reduces, _) in &rounds {
                for host in reduces {
                    for &(k, v) in host {
                        m[k as usize] = m[k as usize].min(v);
                    }
                }
            }
            m
        };
        for variant in [Variant::SgrOnly, Variant::SgrCf, Variant::SgrCfGar] {
            let got = run_program(variant, 56, &rounds, threads);
            prop_assert_eq!(&got, &expected, "variant {} diverged", variant);
        }
    }

    #[test]
    fn sum_reductions_are_exact(loads in workload(32)) {
        // Sum is sensitive to duplication/loss: totals must match exactly.
        let g = graph(32);
        let parts = partition(&g, Policy::EdgeCutBlocked, loads.len());
        let loads_ref = &loads;
        let out = Cluster::with_threads(loads.len(), 2).run(|ctx| {
            let dg = &parts[ctx.host()];
            let mut npm: Npm<u64, Sum> = Npm::new(dg, ctx, Sum);
            let my = &loads_ref[ctx.host()];
            ctx.par_for(0..my.len(), |tid, range| {
                for i in range {
                    let (k, v) = my[i];
                    npm.reduce(tid, k, v);
                }
            });
            npm.reduce_sync(ctx);
            dg.master_nodes()
                .map(|m| {
                    let g = dg.local_to_global(m);
                    npm.read(g)
                })
                .sum::<u64>()
        });
        let total: u64 = out.iter().sum();
        let expected: u64 = loads.iter().flatten().map(|&(_, v)| v).sum();
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn requests_see_post_sync_values(keys in prop::collection::vec(0u32..40, 1..30)) {
        // After reduce_sync + request_sync, any host can read any key and
        // sees the canonical minimum.
        let g = graph(40);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let keys_ref = &keys;
        let ok = Cluster::new(2).run(|ctx| {
            let dg = &parts[ctx.host()];
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|g| g as u64 + 100);
            for (i, &k) in keys_ref.iter().enumerate() {
                npm.reduce(0, k, (ctx.host() as u64) * 50 + i as u64);
            }
            npm.reduce_sync(ctx);
            for &k in keys_ref.iter() {
                npm.request(k);
            }
            npm.request_sync(ctx);
            // Model: min over both hosts' reduces and the init value.
            keys_ref.iter().all(|&k| {
                let mut expect = k as u64 + 100;
                for h in 0..2u64 {
                    for (j, &kk) in keys_ref.iter().enumerate() {
                        if kk == k {
                            expect = expect.min(h * 50 + j as u64);
                        }
                    }
                }
                npm.read(k) == expect
            })
        });
        prop_assert!(ok.iter().all(|&b| b));
    }
}

mod mirror_reset {
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::{gen, NodeId};
    use kimbap_npm::{Min, MirrorSync, NodePropMap, Npm};

    /// Push-style label propagation with mirror reset must produce the
    /// same labels as broadcast. (Total traffic usually *grows* — the
    /// disabled redundancy filter inflates reduce-sync — which is exactly
    /// why broadcast is Kimbap's default; see `MirrorSync` docs.)
    #[test]
    fn reset_to_identity_preserves_push_lp() {
        let g = gen::rmat(7, 4, 77);
        let hosts = 3;
        let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
        let run = |mode: MirrorSync| -> (Vec<u64>, u64) {
            let out = Cluster::with_threads(hosts, 2).run(|ctx| {
                let dg = &parts[ctx.host()];
                let mut label: Npm<u64, Min> = Npm::new(dg, ctx, Min);
                label.set_mirror_sync(mode);
                label.init_masters(&|g| g as u64);
                label.pin_mirrors(ctx);
                loop {
                    label.reset_updated();
                    let l = &label;
                    ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                        for lid in range {
                            let lid = lid as u32;
                            if dg.degree(lid) == 0 {
                                continue;
                            }
                            let my = l.read(dg.local_to_global(lid));
                            for (dst, _) in dg.edges(lid) {
                                let dst_g = dg.local_to_global(dst);
                                // Push-style: the mirror read only filters
                                // redundant reduces; identity (MAX) makes
                                // the filter pass, which is harmless.
                                if my < l.read(dst_g) {
                                    l.reduce(tid, dst_g, my);
                                }
                            }
                        }
                    });
                    label.reduce_sync(ctx);
                    label.broadcast_sync(ctx);
                    if !label.is_updated(ctx) {
                        break;
                    }
                }
                let labels: Vec<(NodeId, u64)> = dg
                    .master_nodes()
                    .map(|m| {
                        let gid = dg.local_to_global(m);
                        (gid, label.read(gid))
                    })
                    .collect();
                (labels, ctx.stats().bytes)
            });
            let mut labels = vec![0u64; g.num_nodes()];
            let mut bytes = 0;
            for (host_labels, b) in out {
                bytes += b;
                for (gid, v) in host_labels {
                    labels[gid as usize] = v;
                }
            }
            (labels, bytes)
        };
        let (broadcast_labels, broadcast_bytes) = run(MirrorSync::Broadcast);
        let (reset_labels, reset_bytes) = run(MirrorSync::ResetToIdentity);
        assert_eq!(broadcast_labels, reset_labels);
        // Both modes must have moved real data; the byte *direction* is a
        // documented trade-off, not an invariant.
        assert!(broadcast_bytes > 0 && reset_bytes > 0);
    }
}
