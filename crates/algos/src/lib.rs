//! The paper's seven graph algorithms (§6.1), written against the
//! node-property map API exactly as the Kimbap compiler would emit them
//! (compare [`cc::cc_sv`] with the paper's Fig. 8).
//!
//! Four graph problems are covered:
//!
//! | Problem | Algorithms | Operator types |
//! |---|---|---|
//! | Community detection | [`fn@louvain`] (LV), [`fn@leiden`] (LD) | adjacent + trans-vertex |
//! | Connected components | [`cc::cc_lp`], [`cc::cc_sclp`], [`cc::cc_sv`] | LP adjacent; SCLP both; SV trans |
//! | Minimum spanning forest | [`fn@msf`] (Boruvka) | trans-vertex |
//! | Maximal independent set | [`fn@mis`] (priority-based) | adjacent |
//!
//! Every algorithm is generic over a [`MapBuilder`], so the same source
//! runs on the default SGR+CF+GAR node-property map, on the §6.4 ablation
//! variants, and on the memcached-like baseline from `kimbap-baselines`.
//!
//! [`refcheck`] holds single-threaded reference implementations (union-find
//! connectivity, Kruskal forests, MIS validity, modularity) used by tests
//! and benches to validate every distributed result.
//!
//! # Example: connected components in a few lines
//!
//! ```
//! use kimbap_algos::{cc, merge_master_values, NpmBuilder};
//! use kimbap_comm::Cluster;
//! use kimbap_dist::{partition, Policy};
//! use kimbap_graph::gen;
//!
//! let g = gen::grid_road(8, 8, 1);
//! let parts = partition(&g, Policy::CartesianVertexCut, 2);
//! let per_host = Cluster::new(2).run(|ctx| {
//!     cc::cc_sv(&parts[ctx.host()], ctx, &NpmBuilder::default())
//! });
//! let labels = merge_master_values(g.num_nodes(), per_host);
//! // A grid is connected: every node ends up labeled 0.
//! assert!(labels.iter().all(|&l| l == 0));
//! ```

pub mod builder;
pub mod cc;
pub mod extra;
pub mod leiden;
pub mod louvain;
pub mod mis;
pub mod msf;
pub mod refcheck;

pub use builder::{MapBuilder, NpmBuilder};
pub use extra::{bfs, pagerank, sssp};
pub use leiden::leiden;
pub use louvain::{compose_labels, louvain, CommunityResult, LouvainConfig};
pub use mis::mis;
pub use msf::msf;

use kimbap_graph::NodeId;

/// Merges per-host `(global id, value)` master lists into one dense global
/// vector.
///
/// # Panics
///
/// Panics if any node is reported by zero or two hosts — master ownership
/// must be a partition.
pub fn merge_master_values<T: Copy + Default>(
    n: usize,
    per_host: Vec<Vec<(NodeId, T)>>,
) -> Vec<T> {
    let mut out = vec![T::default(); n];
    let mut seen = vec![false; n];
    for host_vals in per_host {
        for (g, v) in host_vals {
            assert!(!seen[g as usize], "node {g} reported by two hosts");
            seen[g as usize] = true;
            out[g as usize] = v;
        }
    }
    assert!(seen.iter().all(|&s| s), "some node reported by no host");
    out
}
