//! Beyond the paper's seven: classic adjacent-vertex workloads (BFS,
//! SSSP, PageRank) written on the same node-property map API.
//!
//! These are not part of the paper's evaluation; they demonstrate that the
//! programming framework covers the standard vertex-centric repertoire,
//! and they double as additional correctness load on the runtime (a sum
//! reduction with convergence thresholds behaves very differently from the
//! monotone min-reductions the paper's algorithms lean on).

use crate::builder::MapBuilder;
use kimbap_comm::HostCtx;
use kimbap_dist::DistGraph;
use kimbap_graph::NodeId;
use kimbap_npm::{Min, NodePropMap, Sum};

/// Unreached marker for BFS/SSSP distances.
pub const UNREACHED: u64 = u64::MAX;

/// Breadth-first search levels from `source`: returns `(node, level)` for
/// this host's masters (`UNREACHED` if unreachable). Collective.
pub fn bfs<B: MapBuilder>(
    dg: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    source: NodeId,
) -> Vec<(NodeId, u64)> {
    let mut dist = b.build::<u64, Min>(dg, ctx, Min);
    dist.init_masters(&|g| if g == source { 0 } else { UNREACHED });
    dist.pin_mirrors(ctx);
    loop {
        dist.reset_updated();
        let d = &dist;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let lid = lid as u32;
                let targets = dg.targets(lid);
                if targets.len() == 0 {
                    continue;
                }
                let my = d.read(dg.local_to_global(lid));
                if my == UNREACHED {
                    continue;
                }
                for dst in targets {
                    let dst_g = dg.local_to_global(dst);
                    if my + 1 < d.read(dst_g) {
                        d.reduce(tid, dst_g, my + 1);
                    }
                }
            }
        });
        dist.reduce_sync(ctx);
        dist.broadcast_sync(ctx);
        if !dist.is_updated(ctx) {
            break;
        }
    }
    dist.unpin_mirrors();
    dg.master_nodes()
        .map(|m| {
            let g = dg.local_to_global(m);
            (g, dist.read(g))
        })
        .collect()
}

/// Single-source shortest paths (Bellman-Ford style relaxation over edge
/// weights): returns `(node, distance)` for this host's masters. Collective.
pub fn sssp<B: MapBuilder>(
    dg: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    source: NodeId,
) -> Vec<(NodeId, u64)> {
    let mut dist = b.build::<u64, Min>(dg, ctx, Min);
    dist.init_masters(&|g| if g == source { 0 } else { UNREACHED });
    dist.pin_mirrors(ctx);
    loop {
        dist.reset_updated();
        let d = &dist;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let lid = lid as u32;
                let edges = dg.edges(lid);
                if edges.len() == 0 {
                    continue;
                }
                let my = d.read(dg.local_to_global(lid));
                if my == UNREACHED {
                    continue;
                }
                for (dst, w) in edges {
                    let dst_g = dg.local_to_global(dst);
                    let cand = my.saturating_add(w);
                    if cand < d.read(dst_g) {
                        d.reduce(tid, dst_g, cand);
                    }
                }
            }
        });
        dist.reduce_sync(ctx);
        dist.broadcast_sync(ctx);
        if !dist.is_updated(ctx) {
            break;
        }
    }
    dist.unpin_mirrors();
    dg.master_nodes()
        .map(|m| {
            let g = dg.local_to_global(m);
            (g, dist.read(g))
        })
        .collect()
}

/// Fixed-point scaling factor for PageRank ranks (integer sums keep the
/// distributed reductions exact and deterministic).
pub const PR_SCALE: u64 = 1_000_000;

/// PageRank with damping 0.85, `iters` synchronous iterations, uniform
/// teleport. Ranks are fixed-point scaled by [`PR_SCALE`] and sum
/// (approximately, due to rounding and dangling nodes) to `n * PR_SCALE`.
/// Returns `(node, rank)` for this host's masters. Collective.
pub fn pagerank<B: MapBuilder>(
    dg: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    iters: usize,
) -> Vec<(NodeId, u64)> {
    let n = dg.num_global_nodes() as u64;
    if n == 0 {
        return Vec::new();
    }

    // Global out-degrees (edges may span hosts under a vertex-cut).
    let mut degree = b.build::<u64, Sum>(dg, ctx, Sum);
    {
        let d = &degree;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let deg = dg.degree(lid as u32) as u64;
                if deg > 0 {
                    d.reduce(tid, dg.local_to_global(lid as u32), deg);
                }
            }
        });
    }
    degree.reduce_sync(ctx);
    degree.pin_mirrors(ctx);

    let mut rank = b.build::<u64, Sum>(dg, ctx, Sum);
    rank.init_masters(&|_| PR_SCALE);
    rank.pin_mirrors(ctx);
    let mut contrib = b.build::<u64, Sum>(dg, ctx, Sum);

    for _ in 0..iters {
        // Scatter: each node sends rank/degree along its edges.
        contrib.reset_values(ctx);
        {
            let (r, d, c) = (&rank, &degree, &contrib);
            ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                for lid in range {
                    let lid = lid as u32;
                    let targets = dg.targets(lid);
                    if targets.len() == 0 {
                        continue;
                    }
                    let g = dg.local_to_global(lid);
                    let share = r.read(g) / d.read(g).max(1);
                    for dst in targets {
                        c.reduce(tid, dg.local_to_global(dst), share);
                    }
                }
            });
        }
        contrib.reduce_sync(ctx);

        // Gather: rank = teleport + damping * contributions (masters only;
        // contributions of a master are local under GAR).
        rank.reset_updated();
        let teleport = (PR_SCALE * 15) / 100;
        let updates: Vec<(NodeId, u64)> = dg
            .master_nodes()
            .map(|m| {
                let g = dg.local_to_global(m);
                (g, teleport + (contrib.read(g) * 85) / 100)
            })
            .collect();
        for (g, v) in updates {
            rank.set(g, v);
        }
        rank.broadcast_sync(ctx);
    }

    dg.master_nodes()
        .map(|m| {
            let g = dg.local_to_global(m);
            (g, rank.read(g))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NpmBuilder;
    use crate::merge_master_values;
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::{gen, Graph};
    use std::collections::VecDeque;

    fn ref_bfs(g: &Graph, source: NodeId) -> Vec<u64> {
        let mut dist = vec![UNREACHED; g.num_nodes()];
        dist[source as usize] = 0;
        let mut q = VecDeque::from([source]);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u).iter() {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    fn ref_sssp(g: &Graph, source: NodeId) -> Vec<u64> {
        // Dijkstra.
        let mut dist = vec![UNREACHED; g.num_nodes()];
        dist[source as usize] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, source)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.edges(u) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn bfs_matches_reference() {
        let g = gen::rmat(8, 4, 61);
        let parts = partition(&g, Policy::CartesianVertexCut, 3);
        let b = NpmBuilder::default();
        let per_host =
            Cluster::with_threads(3, 2).run(|ctx| bfs(&parts[ctx.host()], ctx, &b, 0));
        assert_eq!(merge_master_values(g.num_nodes(), per_host), ref_bfs(&g, 0));
    }

    #[test]
    fn bfs_on_path_counts_hops() {
        let mut bb = kimbap_graph::GraphBuilder::new();
        for i in 0..50u32 {
            bb.add_edge(i, i + 1, 1);
        }
        let g = bb.symmetric(true).build();
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let b = NpmBuilder::default();
        let per_host = Cluster::new(2).run(|ctx| bfs(&parts[ctx.host()], ctx, &b, 0));
        let levels = merge_master_values(g.num_nodes(), per_host);
        assert_eq!(levels[50], 50);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = gen::grid_road(9, 9, 13); // built-in random weights
        let parts = partition(&g, Policy::CartesianVertexCut, 2);
        let b = NpmBuilder::default();
        let per_host =
            Cluster::with_threads(2, 2).run(|ctx| sssp(&parts[ctx.host()], ctx, &b, 0));
        assert_eq!(
            merge_master_values(g.num_nodes(), per_host),
            ref_sssp(&g, 0)
        );
    }

    #[test]
    fn pagerank_mass_and_partition_independence() {
        let g = gen::rmat(7, 6, 67);
        let n = g.num_nodes();
        let run = |hosts: usize| {
            let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
            let b = NpmBuilder::default();
            let per_host = Cluster::with_threads(hosts, 2)
                .run(|ctx| pagerank(&parts[ctx.host()], ctx, &b, 10));
            merge_master_values(n, per_host)
        };
        let r1 = run(1);
        let r3 = run(3);
        assert_eq!(r1, r3, "ranks must not depend on the partitioning");
        // Mass conservation within rounding: ranks sum to ~n * PR_SCALE.
        let total: u64 = r1.iter().sum();
        let expected = n as u64 * PR_SCALE;
        let tol = expected / 5; // dangling nodes leak mass; stay in range
        assert!(
            total > expected - tol && total < expected + tol,
            "total {total} vs expected {expected}"
        );
        // Hubs must out-rank leaves.
        let hub = (0..n as u32).max_by_key(|&u| g.degree(u)).unwrap();
        let leaf = (0..n as u32)
            .filter(|&u| g.degree(u) > 0)
            .min_by_key(|&u| g.degree(u))
            .unwrap();
        assert!(r1[hub as usize] > r1[leaf as usize]);
    }
}
