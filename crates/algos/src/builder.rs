//! Abstraction over node-property-map backends.

use kimbap_comm::HostCtx;
use kimbap_dist::DistGraph;
use kimbap_npm::{NodePropMap, Npm, PropValue, ReduceOp, Variant};

/// Constructs node-property maps for an algorithm.
///
/// Algorithms take a `MapBuilder` instead of a concrete map type so the
/// identical algorithm source runs on every runtime of §6.4: the default
/// Kimbap map and its ablation variants (via [`NpmBuilder`]) and the
/// memcached-like store (via `kimbap-baselines`' builder).
pub trait MapBuilder: Sync {
    /// The map type produced for value type `T` and operator `Op`.
    type Map<'g, T: PropValue, Op: ReduceOp<T>>: NodePropMap<T>
    where
        Self: 'g;

    /// Creates a map over `dg`'s global node space. Collective: all hosts
    /// construct their maps together.
    fn build<'g, T: PropValue, Op: ReduceOp<T>>(
        &'g self,
        dg: &'g DistGraph,
        ctx: &HostCtx,
        op: Op,
    ) -> Self::Map<'g, T, Op>;
}

/// Builds the standard [`Npm`] with a chosen runtime [`Variant`].
///
/// # Example
///
/// ```
/// use kimbap_algos::NpmBuilder;
/// use kimbap_npm::Variant;
///
/// let default = NpmBuilder::default(); // SGR+CF+GAR
/// let ablation = NpmBuilder::new(Variant::SgrOnly);
/// assert_ne!(default.variant(), ablation.variant());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NpmBuilder {
    variant: Variant,
}

impl NpmBuilder {
    /// A builder producing maps of the given variant.
    pub fn new(variant: Variant) -> Self {
        NpmBuilder { variant }
    }

    /// The variant this builder produces.
    pub fn variant(&self) -> Variant {
        self.variant
    }
}

impl MapBuilder for NpmBuilder {
    type Map<'g, T: PropValue, Op: ReduceOp<T>> = Npm<'g, T, Op>;

    fn build<'g, T: PropValue, Op: ReduceOp<T>>(
        &'g self,
        dg: &'g DistGraph,
        ctx: &HostCtx,
        op: Op,
    ) -> Npm<'g, T, Op> {
        Npm::with_variant(dg, ctx, op, self.variant)
    }
}
