//! Boruvka's minimum spanning forest (§6.1) — a trans-vertex program.
//!
//! Each round every component selects its minimum-weight outgoing edge
//! (a min-reduction keyed by the component representative, i.e. a write to
//! a dynamically computed node), components hook along the selected edges,
//! and parent pointers are compressed by pointer jumping. Ties are broken
//! by `(weight, src, dst)`, making the edge order total and the forest
//! deterministic.

use crate::builder::MapBuilder;
use crate::cc::shortcut;
use kimbap_comm::HostCtx;
use kimbap_dist::DistGraph;
use kimbap_graph::NodeId;
use kimbap_npm::{BoolReducer, Min, NodePropMap, ReduceOp};

/// Per-host MSF output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsfHostResult {
    /// Forest edges recorded by this host as `(src, dst, weight)`.
    ///
    /// An edge can be selected by the components of *both* endpoints, so
    /// the union over hosts may contain duplicates — merge with
    /// [`merge_forest`].
    pub edges: Vec<(NodeId, NodeId, u64)>,
    /// This host's master parent labels after convergence (component ids).
    pub parents: Vec<(NodeId, u64)>,
}

/// Deduplicates per-host forest edges and returns `(edges, total_weight)`.
pub fn merge_forest(per_host: Vec<MsfHostResult>) -> (Vec<(NodeId, NodeId, u64)>, u64) {
    let mut edges: Vec<(NodeId, NodeId, u64)> = per_host
        .into_iter()
        .flat_map(|h| h.edges)
        .map(|(u, v, w)| (u.min(v), u.max(v), w))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let total = edges.iter().map(|&(_, _, w)| w).sum();
    (edges, total)
}

/// Runs distributed Boruvka; returns this host's selected edges and final
/// component labels. Collective.
pub fn msf<B: MapBuilder>(dg: &DistGraph, ctx: &HostCtx, b: &B) -> MsfHostResult {
    type MinEdge = (u64, (u32, u32));

    let mut parent = b.build::<u64, Min>(dg, ctx, Min);
    parent.init_masters(&|g| g as u64);
    // The first map tracks parents; the second holds, per component, the
    // minimum (weight, edge) to merge with — the paper's two MSF maps.
    let mut minedge = b.build::<MinEdge, Min>(dg, ctx, Min);
    let none: MinEdge = Min.identity();

    let work_done = BoolReducer::new();
    let forest = parking_lot::Mutex::new(Vec::new());

    loop {
        work_done.set(false);

        // Phase 1: every component min-reduces its lightest outgoing edge.
        // Parent reads are adjacent -> pinned mirrors.
        parent.pin_mirrors(ctx);
        minedge.reset_values(ctx);
        {
            let (p, me) = (&parent, &minedge);
            ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                for lid in range {
                    let lid = lid as u32;
                    let edges = dg.edges(lid);
                    if edges.len() == 0 {
                        continue;
                    }
                    let gu = dg.local_to_global(lid);
                    let pu = p.read(gu);
                    for (dst, w) in edges {
                        let gv = dg.local_to_global(dst);
                        let pv = p.read(gv);
                        if pu != pv {
                            let e: MinEdge = (w, (gu, gv));
                            me.reduce(tid, pu as NodeId, e);
                            me.reduce(tid, pv as NodeId, e);
                        }
                    }
                }
            });
        }
        minedge.reduce_sync(ctx);
        parent.unpin_mirrors();

        // Phase 2a: roots request the parents of their chosen edge's
        // endpoints (any node in the graph — the trans-vertex accesses).
        {
            let (p, me) = (&parent, &minedge);
            ctx.par_for(0..dg.num_masters(), |_tid, range| {
                for m in range {
                    let g = dg.local_to_global(m as u32);
                    if p.read(g) != g as u64 {
                        continue; // not a root
                    }
                    let e = me.read(g);
                    if e != none {
                        let (_, (u, v)) = e;
                        p.request(u);
                        p.request(v);
                    }
                }
            });
        }
        parent.request_sync(ctx);

        // Phase 2b: hook — the larger root adopts the smaller; record the
        // edge.
        {
            let (p, me) = (&parent, &minedge);
            let forest = &forest;
            let work_done = &work_done;
            ctx.par_for(0..dg.num_masters(), |tid, range| {
                let mut local_edges = Vec::new();
                for m in range {
                    let g = dg.local_to_global(m as u32);
                    if p.read(g) != g as u64 {
                        continue;
                    }
                    let e = me.read(g);
                    if e == none {
                        continue;
                    }
                    let (w, (u, v)) = e;
                    let (cu, cv) = (p.read(u), p.read(v));
                    if cu == cv {
                        continue;
                    }
                    let (lo, hi) = (cu.min(cv), cu.max(cv));
                    p.reduce(tid, hi as NodeId, lo);
                    work_done.reduce(true);
                    local_edges.push((u, v, w));
                }
                if !local_edges.is_empty() {
                    forest.lock().extend(local_edges);
                }
            });
        }
        parent.reduce_sync(ctx);

        // Phase 3: compress parent chains to stars.
        shortcut(&mut parent, dg, ctx);

        if !work_done.read(ctx) {
            break;
        }
    }

    MsfHostResult {
        edges: forest.into_inner(),
        parents: dg
            .master_nodes()
            .map(|m| {
                let g = dg.local_to_global(m);
                (g, parent.read(g))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NpmBuilder;
    use crate::refcheck;
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::{gen, Graph};

    fn run_msf(g: &Graph, hosts: usize, threads: usize, policy: Policy) -> (usize, u64) {
        let parts = partition(g, policy, hosts);
        let b = NpmBuilder::default();
        let per_host = Cluster::with_threads(hosts, threads)
            .run(|ctx| msf(&parts[ctx.host()], ctx, &b));
        let (edges, weight) = merge_forest(per_host);
        // No duplicate undirected edges.
        let mut keys: Vec<_> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), edges.len());
        // Forest edges must not create cycles.
        let mut uf = refcheck::UnionFind::new(g.num_nodes());
        for &(u, v, _) in &edges {
            assert_ne!(uf.find(u), uf.find(v), "cycle via ({u},{v})");
            uf.union(u, v);
        }
        (edges.len(), weight)
    }

    #[test]
    fn weighted_grid_matches_kruskal() {
        let g = gen::grid_road(6, 7, 4); // random weights built in
        let (count, weight) = run_msf(&g, 3, 2, Policy::EdgeCutBlocked);
        assert_eq!(count, refcheck::msf_edge_count(&g));
        assert_eq!(weight, refcheck::msf_weight(&g));
    }

    #[test]
    fn power_law_with_random_weights() {
        let g = gen::with_random_weights(&gen::rmat(7, 4, 6), 1000, 3);
        let (count, weight) = run_msf(&g, 4, 2, Policy::CartesianVertexCut);
        assert_eq!(count, refcheck::msf_edge_count(&g));
        assert_eq!(weight, refcheck::msf_weight(&g));
    }

    #[test]
    fn disconnected_forest() {
        let mut b = kimbap_graph::GraphBuilder::new();
        b.add_edge(0, 1, 5).add_edge(1, 2, 3).add_edge(0, 2, 4);
        b.add_edge(10, 11, 7);
        b.ensure_nodes(12);
        let g = b.symmetric(true).build();
        let (count, weight) = run_msf(&g, 2, 1, Policy::EdgeCutBlocked);
        assert_eq!(count, 3); // 2 in the triangle + 1 in the pair
        assert_eq!(weight, 3 + 4 + 7);
    }

    #[test]
    fn single_host_equals_multi_host() {
        let g = gen::with_random_weights(&gen::rmat(6, 3, 1), 50, 9);
        let a = run_msf(&g, 1, 1, Policy::EdgeCutBlocked);
        let b = run_msf(&g, 3, 2, Policy::EdgeCutBlocked);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }
}
