//! Connected components: label propagation (CC-LP), shortcutting label
//! propagation (CC-SCLP), and Shiloach-Vishkin (CC-SV).
//!
//! All three label every node with the smallest node id in its component.
//! CC-LP is a pure adjacent-vertex program; CC-SV is the paper's running
//! trans-vertex example (Figs. 4 and 8); CC-SCLP interleaves the two.

use crate::builder::MapBuilder;
use kimbap_comm::HostCtx;
use kimbap_dist::DistGraph;
use kimbap_npm::{BoolReducer, Min, NodePropMap};
use kimbap_graph::NodeId;

/// Collects `(global id, value)` for every master on this host.
pub(crate) fn collect_masters<M: NodePropMap<u64>>(
    map: &M,
    dg: &DistGraph,
) -> Vec<(NodeId, u64)> {
    dg.master_nodes()
        .map(|m| {
            let g = dg.local_to_global(m);
            (g, map.read(g))
        })
        .collect()
}

/// Label propagation: push the node's label to every neighbor, keep the
/// minimum, repeat until quiescent. Adjacent-vertex only, so the compiler
/// (and this hand mirror of its output) pins mirrors and elides requests.
///
/// Returns this host's master labels. Collective.
pub fn cc_lp<B: MapBuilder>(dg: &DistGraph, ctx: &HostCtx, b: &B) -> Vec<(NodeId, u64)> {
    let mut label = b.build::<u64, Min>(dg, ctx, Min);
    label.init_masters(&|g| g as u64);
    label.pin_mirrors(ctx);
    loop {
        // Publish the BSP round so fault plans can target it.
        ctx.set_round(ctx.current_round() + 1);
        label.reset_updated();
        let l = &label;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let lid = lid as u32;
                // One block lookup serves both the skip test and the scan
                // (degree() would decode the compressed header twice), and
                // targets() skips weight bytes entirely — CC never reads
                // them.
                let targets = dg.targets(lid);
                if targets.len() == 0 {
                    continue;
                }
                let my = l.read(dg.local_to_global(lid));
                targets.for_each(|dst| {
                    let dst_g = dg.local_to_global(dst);
                    if my < l.read(dst_g) {
                        l.reduce(tid, dst_g, my);
                    }
                });
            }
        });
        label.reduce_sync(ctx);
        label.broadcast_sync(ctx);
        if !label.is_updated(ctx) {
            break;
        }
    }
    label.unpin_mirrors();
    collect_masters(&label, dg)
}

/// One hook pass of CC-SV (paper Fig. 8, `Hook`): for every edge
/// `src -> dst` with `parent(src) > parent(dst)`, min-reduce
/// `parent(parent(src))` by `parent(dst)` — a write to a dynamically
/// computed node. Pinned mirrors serve the adjacent reads.
fn hook<M: NodePropMap<u64>>(
    parent: &mut M,
    dg: &DistGraph,
    ctx: &HostCtx,
    work_done: &BoolReducer,
) {
    parent.pin_mirrors(ctx);
    loop {
        ctx.set_round(ctx.current_round() + 1);
        parent.reset_updated();
        let p = &*parent;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let lid = lid as u32;
                let targets = dg.targets(lid);
                if targets.len() == 0 {
                    continue;
                }
                let src_parent = p.read(dg.local_to_global(lid));
                targets.for_each(|dst| {
                    let dst_parent = p.read(dg.local_to_global(dst));
                    if src_parent > dst_parent {
                        work_done.reduce(true);
                        p.reduce(tid, src_parent as NodeId, dst_parent);
                    }
                });
            }
        });
        parent.reduce_sync(ctx);
        parent.broadcast_sync(ctx);
        if !parent.is_updated(ctx) {
            break;
        }
    }
    parent.unpin_mirrors();
}

/// One shortcut pass (paper Fig. 8, `Shortcut`): `parent(n) <-
/// parent(parent(n))` until quiescent. The grandparent may be any node in
/// the graph, so each round requests the parents' properties first; the
/// compiler's master-elision restricts the iterator to masters.
pub(crate) fn shortcut<M: NodePropMap<u64>>(parent: &mut M, dg: &DistGraph, ctx: &HostCtx) {
    loop {
        ctx.set_round(ctx.current_round() + 1);
        parent.reset_updated();
        let p = &*parent;
        ctx.par_for(0..dg.num_masters(), |_tid, range| {
            for m in range {
                let g = dg.local_to_global(m as u32);
                let par = p.read(g);
                p.request(par as NodeId);
            }
        });
        parent.request_sync(ctx);
        let p = &*parent;
        ctx.par_for(0..dg.num_masters(), |tid, range| {
            for m in range {
                let g = dg.local_to_global(m as u32);
                let par = p.read(g);
                let grand = p.read(par as NodeId);
                if par != grand {
                    p.reduce(tid, g, grand);
                }
            }
        });
        parent.reduce_sync(ctx);
        parent.broadcast_sync(ctx);
        if !parent.is_updated(ctx) {
            break;
        }
    }
}

/// Shiloach-Vishkin connected components (paper Fig. 4): alternate hook and
/// shortcut until a full round makes no progress. Pointer jumping lets
/// labels skip many edges per round, which is why CC-SV beats CC-LP on
/// high-diameter graphs (§6.2).
///
/// Returns this host's master labels. Collective.
pub fn cc_sv<B: MapBuilder>(dg: &DistGraph, ctx: &HostCtx, b: &B) -> Vec<(NodeId, u64)> {
    let mut parent = b.build::<u64, Min>(dg, ctx, Min);
    parent.init_masters(&|g| g as u64);
    let work_done = BoolReducer::new();
    loop {
        work_done.set(false);
        hook(&mut parent, dg, ctx, &work_done);
        shortcut(&mut parent, dg, ctx);
        if !work_done.read(ctx) {
            break;
        }
    }
    collect_masters(&parent, dg)
}

/// Shortcutting label propagation (Stergiou et al.): each outer round runs
/// one label-propagation sweep (adjacent-vertex, pinned mirrors) followed
/// by one pointer-jumping sweep (trans-vertex, requests), combining LP's
/// fast fan-out on power-law graphs with shortcutting's long jumps on
/// high-diameter graphs.
///
/// Returns this host's master labels. Collective.
pub fn cc_sclp<B: MapBuilder>(dg: &DistGraph, ctx: &HostCtx, b: &B) -> Vec<(NodeId, u64)> {
    let mut label = b.build::<u64, Min>(dg, ctx, Min);
    label.init_masters(&|g| g as u64);
    loop {
        // LP sweep.
        ctx.set_round(ctx.current_round() + 1);
        label.pin_mirrors(ctx);
        label.reset_updated();
        let l = &label;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let lid = lid as u32;
                // One block lookup serves both the skip test and the scan
                // (degree() would decode the compressed header twice), and
                // targets() skips weight bytes entirely — CC never reads
                // them.
                let targets = dg.targets(lid);
                if targets.len() == 0 {
                    continue;
                }
                let my = l.read(dg.local_to_global(lid));
                targets.for_each(|dst| {
                    let dst_g = dg.local_to_global(dst);
                    if my < l.read(dst_g) {
                        l.reduce(tid, dst_g, my);
                    }
                });
            }
        });
        label.reduce_sync(ctx);
        label.broadcast_sync(ctx);
        let lp_updated = label.is_updated(ctx);
        label.unpin_mirrors();

        // Shortcut sweep: one pointer jump per outer round.
        label.reset_updated();
        let l = &label;
        ctx.par_for(0..dg.num_masters(), |_tid, range| {
            for m in range {
                let g = dg.local_to_global(m as u32);
                l.request(l.read(g) as NodeId);
            }
        });
        label.request_sync(ctx);
        let l = &label;
        ctx.par_for(0..dg.num_masters(), |tid, range| {
            for m in range {
                let g = dg.local_to_global(m as u32);
                let par = l.read(g);
                let grand = l.read(par as NodeId);
                if par != grand {
                    l.reduce(tid, g, grand);
                }
            }
        });
        label.reduce_sync(ctx);
        let sc_updated = label.is_updated(ctx);

        if !lp_updated && !sc_updated {
            break;
        }
    }
    collect_masters(&label, dg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NpmBuilder;
    use crate::merge_master_values;
    use crate::refcheck;
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::{gen, Graph};
    use kimbap_npm::Variant;

    fn run_cc(
        g: &Graph,
        hosts: usize,
        threads: usize,
        policy: Policy,
        algo: impl Fn(&DistGraph, &HostCtx, &NpmBuilder) -> Vec<(NodeId, u64)> + Sync,
    ) -> Vec<u64> {
        let parts = partition(g, policy, hosts);
        let b = NpmBuilder::default();
        let per_host =
            Cluster::with_threads(hosts, threads).run(|ctx| algo(&parts[ctx.host()], ctx, &b));
        merge_master_values(g.num_nodes(), per_host)
    }

    fn check_graph(g: &Graph, hosts: usize, threads: usize, policy: Policy) {
        let expected = refcheck::connected_components(g);
        for (name, labels) in [
            ("sv", run_cc(g, hosts, threads, policy, cc_sv)),
            ("lp", run_cc(g, hosts, threads, policy, cc_lp)),
            ("sclp", run_cc(g, hosts, threads, policy, cc_sclp)),
        ] {
            assert_eq!(
                labels, expected,
                "{name} wrong on {hosts} hosts / {policy:?}"
            );
        }
    }

    #[test]
    fn connected_grid() {
        let g = gen::grid_road(7, 9, 1);
        check_graph(&g, 3, 2, Policy::EdgeCutBlocked);
    }

    #[test]
    fn power_law_cvc() {
        let g = gen::rmat(8, 4, 5);
        check_graph(&g, 4, 2, Policy::CartesianVertexCut);
    }

    #[test]
    fn disconnected_components() {
        // Two separate paths + isolated nodes.
        let mut b = kimbap_graph::GraphBuilder::new();
        for i in 0..10u32 {
            b.add_edge(i, i + 1, 1);
        }
        for i in 20..25u32 {
            b.add_edge(i, i + 1, 1);
        }
        b.ensure_nodes(30);
        let g = b.symmetric(true).build();
        check_graph(&g, 2, 1, Policy::EdgeCutBlocked);
        check_graph(&g, 3, 2, Policy::CartesianVertexCut);
    }

    #[test]
    fn single_host_matches() {
        let g = gen::rmat(7, 3, 8);
        check_graph(&g, 1, 2, Policy::EdgeCutBlocked);
    }

    #[test]
    fn high_diameter_path() {
        // A long path: worst case for LP, best case for pointer jumping.
        let mut b = kimbap_graph::GraphBuilder::new();
        for i in 0..200u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.symmetric(true).build();
        check_graph(&g, 2, 2, Policy::EdgeCutBlocked);
    }

    #[test]
    fn sv_works_on_all_variants() {
        let g = gen::rmat(7, 4, 3);
        let expected = refcheck::connected_components(&g);
        for variant in [Variant::SgrOnly, Variant::SgrCf, Variant::SgrCfGar] {
            let parts = partition(&g, Policy::EdgeCutBlocked, 3);
            let b = NpmBuilder::new(variant);
            let per_host = Cluster::with_threads(3, 2)
                .run(|ctx| cc_sv(&parts[ctx.host()], ctx, &b));
            let labels = merge_master_values(g.num_nodes(), per_host);
            assert_eq!(labels, expected, "variant {variant} diverged");
        }
    }
}
