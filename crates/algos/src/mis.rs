//! Priority-based maximal independent set (Burtscher et al., §6.1).
//!
//! Every node gets a unique priority derived from its degree (lower degree
//! ⇒ higher priority, which favors larger sets) with the node id as a
//! tie-break. Each round, an undecided node whose priority exceeds that of
//! all undecided neighbors joins the set; its neighbors drop out. All reads
//! are adjacent, so this is a pure adjacent-vertex program (Table 2) —
//! mirrors are pinned, requests elided.

use crate::builder::MapBuilder;
use kimbap_comm::HostCtx;
use kimbap_dist::DistGraph;
use kimbap_graph::NodeId;
use kimbap_npm::{Max, NodePropMap, Sum, SumReducer};

/// Node state encoding in the `state` map (`Max`-reduced, so decisions are
/// monotone: undecided < in-set < out).
const UNDECIDED: u64 = 0;
/// The node joined the independent set.
const IN_SET: u64 = 1;
/// A neighbor joined the set, so this node is excluded.
const OUT: u64 = 2;

/// Unique priority: low degree wins, node id breaks ties.
fn priority(degree: u64, id: NodeId) -> u64 {
    let capped = degree.min(u32::MAX as u64 - 1) as u32;
    ((u32::MAX - capped) as u64) << 32 | id as u64
}

/// Computes a maximal independent set; returns `(global id, in_set)` for
/// this host's masters. Collective.
///
/// Uses two long-lived node-property maps (degree and state, as in the
/// paper's two-map MIS) plus a per-round scratch map holding the best
/// undecided-neighbor priority.
pub fn mis<B: MapBuilder>(dg: &DistGraph, ctx: &HostCtx, b: &B) -> Vec<(NodeId, bool)> {
    // Global degrees: local degrees sum-reduced (a node's edges may span
    // hosts under a vertex-cut).
    let mut degree = b.build::<u64, Sum>(dg, ctx, Sum);
    {
        let d = &degree;
        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
            for lid in range {
                let lid = lid as u32;
                let deg = dg.degree(lid) as u64;
                if deg > 0 {
                    d.reduce(tid, dg.local_to_global(lid), deg);
                }
            }
        });
    }
    degree.reduce_sync(ctx);
    degree.pin_mirrors(ctx); // adjacent reads of neighbor degrees

    let mut state = b.build::<u64, Max>(dg, ctx, Max);
    state.pin_mirrors(ctx); // identity (UNDECIDED) everywhere
    let mut best = b.build::<u64, Max>(dg, ctx, Max);

    let undecided = SumReducer::new();
    loop {
        // Phase 1: per-round scratch — highest undecided-neighbor priority.
        best.reset_values(ctx);
        {
            let (s, d, bm) = (&state, &degree, &best);
            ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                for lid in range {
                    let lid = lid as u32;
                    let targets = dg.targets(lid);
                    if targets.len() == 0 {
                        continue;
                    }
                    let g = dg.local_to_global(lid);
                    if s.read(g) != UNDECIDED {
                        continue;
                    }
                    for dst in targets {
                        let dst_g = dg.local_to_global(dst);
                        if s.read(dst_g) == UNDECIDED {
                            bm.reduce(tid, g, priority(d.read(dst_g), dst_g));
                        }
                    }
                }
            });
        }
        best.reduce_sync(ctx);

        // Phase 2: winners join the set (decided at masters; `best` of a
        // master is a local read under GAR).
        state.reset_updated();
        {
            let (s, d, bm) = (&state, &degree, &best);
            ctx.par_for(0..dg.num_masters(), |tid, range| {
                for m in range {
                    let g = dg.local_to_global(m as u32);
                    if s.read(g) == UNDECIDED && priority(d.read(g), g) > bm.read(g) {
                        s.reduce(tid, g, IN_SET);
                    }
                }
            });
        }
        state.reduce_sync(ctx);
        state.broadcast_sync(ctx);

        // Phase 3: neighbors of winners drop out.
        {
            let s = &state;
            ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                for lid in range {
                    let lid = lid as u32;
                    let targets = dg.targets(lid);
                    if targets.len() == 0 {
                        continue;
                    }
                    if s.read(dg.local_to_global(lid)) != IN_SET {
                        continue;
                    }
                    for dst in targets {
                        let dst_g = dg.local_to_global(dst);
                        if s.read(dst_g) == UNDECIDED {
                            s.reduce(tid, dst_g, OUT);
                        }
                    }
                }
            });
        }
        state.reduce_sync(ctx);
        state.broadcast_sync(ctx);

        // Quiescence: any undecided master left anywhere?
        undecided.set(0);
        {
            let (s, u) = (&state, &undecided);
            ctx.par_for(0..dg.num_masters(), |_tid, range| {
                for m in range {
                    if s.read(dg.local_to_global(m as u32)) == UNDECIDED {
                        u.reduce(1);
                    }
                }
            });
        }
        if undecided.read(ctx) == 0 {
            break;
        }
    }

    // Isolated nodes never see a competitor: they are in the set. A node
    // with edges is in iff its state is IN_SET.
    dg.master_nodes()
        .map(|m| {
            let g = dg.local_to_global(m);
            (g, state.read(g) == IN_SET)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NpmBuilder;
    use crate::merge_master_values;
    use crate::refcheck;
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::{gen, Graph};

    fn run_mis(g: &Graph, hosts: usize, threads: usize, policy: Policy) -> Vec<bool> {
        let parts = partition(g, policy, hosts);
        let b = NpmBuilder::default();
        let per_host = Cluster::with_threads(hosts, threads)
            .run(|ctx| mis(&parts[ctx.host()], ctx, &b));
        merge_master_values(g.num_nodes(), per_host)
    }

    #[test]
    fn valid_on_grid() {
        let g = gen::grid_road(6, 6, 2);
        let set = run_mis(&g, 3, 2, Policy::EdgeCutBlocked);
        refcheck::check_mis(&g, &set).unwrap();
    }

    #[test]
    fn valid_on_power_law_cvc() {
        let g = gen::rmat(8, 4, 7);
        let set = run_mis(&g, 4, 2, Policy::CartesianVertexCut);
        refcheck::check_mis(&g, &set).unwrap();
    }

    #[test]
    fn isolated_nodes_included() {
        let mut b = kimbap_graph::GraphBuilder::new();
        b.add_edge(0, 1, 1).ensure_nodes(5);
        let g = b.symmetric(true).build();
        let set = run_mis(&g, 2, 1, Policy::EdgeCutBlocked);
        assert!(set[2] && set[3] && set[4], "isolated nodes belong to any MIS");
        refcheck::check_mis(&g, &set).unwrap();
    }

    #[test]
    fn deterministic_across_host_counts() {
        // Priorities are data-dependent only, so the set must not depend on
        // the partitioning.
        let g = gen::rmat(7, 3, 9);
        let a = run_mis(&g, 1, 1, Policy::EdgeCutBlocked);
        let b = run_mis(&g, 4, 2, Policy::CartesianVertexCut);
        assert_eq!(a, b);
    }

    #[test]
    fn star_prefers_leaves() {
        // Star: center has degree 10, leaves degree 1 -> all leaves in.
        let mut b = kimbap_graph::GraphBuilder::new();
        for i in 1..=10u32 {
            b.add_edge(0, i, 1);
        }
        let g = b.symmetric(true).build();
        let set = run_mis(&g, 2, 2, Policy::EdgeCutBlocked);
        assert!(!set[0]);
        assert!(set[1..].iter().all(|&x| x));
    }
}
