//! Deterministic distributed Leiden community detection (§6.1, LD) — the
//! paper's first distributed Leiden implementation.
//!
//! Leiden improves Louvain's quality guarantee by inserting a *refinement*
//! phase between local moving and aggregation (Traag et al. 2019): within
//! each community, nodes are re-partitioned into well-connected
//! *subcommunities*, and aggregation collapses subcommunities (not
//! communities), carrying the community assignment to the next level as
//! the initial partition. This prevents badly-connected communities from
//! being locked in by aggregation.
//!
//! Determinism notes (this is a BSP formulation, like our Louvain):
//!
//! * refinement is merge-only — a node may join another subcommunity only
//!   while it is still a singleton, and only a subcommunity with a smaller
//!   id, which makes simultaneous decisions acyclic and convergent;
//! * the well-connectedness gate `w(u, C∖u) ≥ γ·k_u·(tot_C − k_u)/M`
//!   follows the Leiden paper.
//!
//! Five node-property maps are used per level (community, community total,
//! subcommunity, subcommunity total/size, and the coarse-id map), matching
//! the paper's "five node property maps for cluster and subcluster
//! information".

use crate::builder::MapBuilder;
use crate::louvain::{
    aggregate, local_moving, modularity_of, CommunityResult, LouvainConfig,
};
use kimbap_comm::HostCtx;
use kimbap_dist::{assemble_dist_graph, DistGraph, Policy};
use kimbap_graph::NodeId;
use kimbap_npm::{Min, NodePropMap, Sum, SumReducer};
use std::collections::HashMap;

/// Maximum refinement (merge) rounds per level.
const MAX_REFINE_ROUNDS: usize = 10;

/// Runs deterministic distributed Leiden; returns this host's
/// [`CommunityResult`]. Collective.
pub fn leiden<B: MapBuilder>(
    dg: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    cfg: &LouvainConfig,
) -> CommunityResult {
    let mut result = CommunityResult::default();
    let mut owned: Option<DistGraph> = None;
    let mut init_comm: Option<Vec<u64>> = None;
    let mut pending_final: Option<Vec<(NodeId, NodeId)>> = None;

    let local_w: u64 = dg
        .master_nodes()
        .chain(dg.mirror_nodes())
        .map(|l| dg.weighted_degree(l))
        .sum();
    let m_total = ctx.all_reduce_u64(local_w, |a, b| a + b) as f64;

    for _level in 0..cfg.max_levels {
        let (mapping, coarse_edges, n_coarse, modularity, improved, init_pairs) = {
            let cur = owned.as_ref().unwrap_or(dg);
            run_level(cur, ctx, b, cfg, m_total, init_comm.as_deref())
        };
        result.modularity = modularity;
        result.levels += 1;
        result.final_nodes = n_coarse;
        result.mappings.push(mapping);

        let prev_n = owned
            .as_ref()
            .map(|d| d.num_global_nodes())
            .unwrap_or(dg.num_global_nodes());
        let shrunk = n_coarse < prev_n;

        let next = assemble_dist_graph(ctx, n_coarse, Policy::EdgeCutBlocked, coarse_edges);

        // Project the community partition onto the coarse graph: every
        // coarse node (a subcommunity) starts the next level in the
        // community it came from.
        let mut init = b.build::<u64, Min>(&next, ctx, Min);
        {
            let im = &init;
            ctx.par_for(0..init_pairs.len(), |tid, range| {
                for i in range {
                    let (coarse, label) = init_pairs[i];
                    im.reduce(tid, coarse, label as u64);
                }
            });
        }
        init.reduce_sync(ctx);
        let seed: Vec<u64> = next
            .master_nodes()
            .map(|m| {
                let g = next.local_to_global(m);
                let v = init.read(g);
                // Coarse nodes always receive a label from some member.
                debug_assert_ne!(v, u64::MAX, "coarse node {g} got no community");
                v
            })
            .collect();
        drop(init);

        // Final projected labels for composition if we stop here.
        let final_mapping: Vec<(NodeId, NodeId)> = next
            .master_nodes()
            .zip(seed.iter())
            .map(|(m, &c)| (next.local_to_global(m), c as NodeId))
            .collect();

        init_comm = Some(seed);
        owned = Some(next);
        pending_final = Some(final_mapping);

        if !improved || !shrunk || n_coarse <= 1 {
            break;
        }
    }
    // Close the label chain: map the final coarse nodes (subcommunities) to
    // their projected communities, so composed labels are communities.
    if let Some(fm) = pending_final {
        result.mappings.push(fm);
    }
    result
}

/// One Leiden level: local moving → subcommunity refinement → aggregation
/// by subcommunity. Returns `(mapping, coarse_edges, n_coarse, modularity,
/// improved, init_pairs)` where `init_pairs` project communities onto
/// coarse ids.
#[allow(clippy::type_complexity)]
fn run_level<B: MapBuilder>(
    cur: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    cfg: &LouvainConfig,
    m_total: f64,
    init_comm: Option<&[u64]>,
) -> (
    Vec<(NodeId, NodeId)>,
    Vec<(NodeId, NodeId, u64)>,
    usize,
    f64,
    bool,
    Vec<(NodeId, NodeId)>,
) {
    let masters = cur.num_masters();

    // Phase 1: local moving (maps 1 and 2: comm, comm_tot).
    let moving = local_moving(cur, ctx, b, cfg, m_total, init_comm);
    let modularity = modularity_of(cur, ctx, b, &moving.cur_comm, &moving.comm, &moving.k, m_total);
    let comm = &moving.comm;
    let cur_comm = &moving.cur_comm;
    let k = &moving.k;

    // Community totals for the well-connectedness gate.
    let mut comm_tot = b.build::<i64, Sum>(cur, ctx, Sum);
    {
        let ct = &comm_tot;
        ctx.par_for(0..masters, |tid, range| {
            for m in range {
                if k[m] > 0 {
                    ct.reduce(tid, cur_comm[m] as NodeId, k[m] as i64);
                }
            }
        });
    }
    comm_tot.reduce_sync(ctx);

    // Phase 2: refinement into subcommunities (maps 3-4: subcomm,
    // subcomm size/total).
    let mut sub: Vec<u64> = (0..masters)
        .map(|m| cur.local_to_global(m as u32) as u64)
        .collect();
    let mut sub_map = b.build::<u64, Min>(cur, ctx, Min);
    for (m, &s) in sub.iter().enumerate() {
        sub_map.set(cur.local_to_global(m as u32), s);
    }
    sub_map.pin_mirrors(ctx);

    let mut sub_size = b.build::<u64, Sum>(cur, ctx, Sum);
    let merges = SumReducer::new();

    for _round in 0..MAX_REFINE_ROUNDS {
        // Subcommunity sizes (a singleton has size 1).
        sub_size.reset_values(ctx);
        {
            let ss = &sub_size;
            let sb = &sub;
            ctx.par_for(0..masters, |tid, range| {
                for m in range {
                    ss.reduce(tid, sb[m] as NodeId, 1);
                }
            });
        }
        sub_size.reduce_sync(ctx);

        // Request the community totals for the gate.
        {
            let ct = &comm_tot;
            ctx.par_for(0..masters, |_tid, range| {
                for m in range {
                    ct.request(cur_comm[m] as NodeId);
                }
            });
        }
        comm_tot.request_sync(ctx);

        // Merge decisions.
        merges.set(0);
        let decisions: Vec<parking_lot::Mutex<Vec<(usize, u64)>>> =
            (0..ctx.threads()).map(|_| parking_lot::Mutex::new(Vec::new())).collect();
        {
            let (sm, ss, cm, ct) = (&sub_map, &sub_size, comm, &comm_tot);
            let sb = &sub;
            let decisions = &decisions;
            let merges = &merges;
            let gamma = cfg.resolution;
            ctx.par_for(0..masters, |tid, range| {
                let mut w_to: HashMap<u64, u64> = HashMap::new();
                for m in range {
                    let lid = m as u32;
                    let g = cur.local_to_global(lid) as u64;
                    // Merge-only: still a singleton?
                    if sb[m] != g || ss.read(g as NodeId) != 1 || k[m] == 0 {
                        continue;
                    }
                    // Well-connected to the community?
                    let my_comm = cur_comm[m];
                    let mut w_in_comm = 0u64;
                    w_to.clear();
                    for (dst, w) in cur.edges(lid) {
                        let gv = cur.local_to_global(dst);
                        if gv as u64 == g {
                            continue;
                        }
                        if cm.read(gv) == my_comm {
                            w_in_comm += w;
                            let s = sm.read(gv);
                            if s < g {
                                *w_to.entry(s).or_default() += w;
                            }
                        }
                    }
                    let tot_c = ct.read(my_comm as NodeId) as f64;
                    let gate = gamma * k[m] as f64 * (tot_c - k[m] as f64) / m_total;
                    if (w_in_comm as f64) < gate {
                        continue; // not well connected: stays singleton
                    }
                    // Join the best-connected smaller subcommunity.
                    if let Some((&best, _)) = w_to
                        .iter()
                        .max_by_key(|&(&s, &w)| (w, std::cmp::Reverse(s)))
                    {
                        decisions[tid].lock().push((m, best));
                        merges.reduce(1);
                    }
                }
            });
        }
        sub_map.reset_updated();
        for d in decisions {
            for (m, s) in d.into_inner() {
                sub[m] = s;
                sub_map.set(cur.local_to_global(m as u32), s);
            }
        }
        sub_map.broadcast_sync(ctx);

        if merges.read(ctx) == 0 {
            break;
        }
    }

    // Phase 3: aggregate by subcommunity (map 5: the coarse-id map inside
    // `aggregate`).
    let (mapping, coarse_edges, n_coarse, _sub_improved) =
        aggregate(cur, ctx, b, &sub, &sub_map);

    // Project communities to coarse space: community label = smallest
    // coarse id of any member subcommunity.
    let mut comm_label = b.build::<u64, Min>(cur, ctx, Min);
    let coarse_of: HashMap<NodeId, NodeId> = mapping.iter().copied().collect();
    {
        let cl = &comm_label;
        ctx.par_for(0..masters, |tid, range| {
            for m in range {
                let g = cur.local_to_global(m as u32);
                let coarse = coarse_of[&g];
                cl.reduce(tid, cur_comm[m] as NodeId, coarse as u64);
            }
        });
    }
    comm_label.reduce_sync(ctx);
    {
        let cl = &comm_label;
        ctx.par_for(0..masters, |_tid, range| {
            for m in range {
                cl.request(cur_comm[m] as NodeId);
            }
        });
    }
    comm_label.request_sync(ctx);

    // (coarse id of u's subcommunity, coarse label of u's community).
    let mut init_pairs: Vec<(NodeId, NodeId)> = (0..masters)
        .map(|m| {
            let g = cur.local_to_global(m as u32);
            (
                coarse_of[&g],
                comm_label.read(cur_comm[m] as NodeId) as NodeId,
            )
        })
        .collect();
    init_pairs.sort_unstable();
    init_pairs.dedup();

    // Improvement: did local moving produce non-singleton communities?
    let moved_local = cur_comm
        .iter()
        .enumerate()
        .any(|(m, &c)| c != cur.local_to_global(m as u32) as u64);
    let improved = ctx.all_reduce_or(moved_local);

    (mapping, coarse_edges, n_coarse, modularity, improved, init_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NpmBuilder;
    use crate::louvain::{compose_labels, louvain};
    use crate::refcheck;
    use kimbap_comm::Cluster;
    use kimbap_dist::partition;
    use kimbap_graph::{builder::from_edges, gen, Graph};

    fn run_leiden(g: &Graph, hosts: usize, threads: usize) -> (Vec<NodeId>, f64) {
        let parts = partition(g, Policy::EdgeCutBlocked, hosts);
        let b = NpmBuilder::default();
        let cfg = LouvainConfig::default();
        let results = Cluster::with_threads(hosts, threads)
            .run(|ctx| leiden(&parts[ctx.host()], ctx, &b, &cfg));
        let q = results[0].modularity;
        let labels = compose_labels(g.num_nodes(), &results);
        (labels, q)
    }

    #[test]
    fn finds_ring_of_cliques() {
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 6;
            for a in 0..6 {
                for b in (a + 1)..6 {
                    edges.push((base + a, base + b, 1));
                }
            }
            edges.push((base, ((c + 1) % 4) * 6, 1));
        }
        let g = from_edges(edges);
        let (labels, q) = run_leiden(&g, 3, 2);
        for c in 0..4u32 {
            let base = (c * 6) as usize;
            assert!(
                (base..base + 6).all(|i| labels[i] == labels[base]),
                "clique {c} split: {labels:?}"
            );
        }
        assert!(q > 0.6, "q = {q}");
    }

    #[test]
    fn quality_at_least_louvain_on_power_law() {
        // Leiden's refinement must not lose quality vs plain Louvain.
        let g = gen::rmat(7, 6, 17);
        let (ld_labels, _) = run_leiden(&g, 2, 2);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let b = NpmBuilder::default();
        let cfg = LouvainConfig::default();
        let lv = Cluster::with_threads(2, 2)
            .run(|ctx| louvain(&parts[ctx.host()], ctx, &b, &cfg));
        let lv_labels = compose_labels(g.num_nodes(), &lv);
        let q_ld = refcheck::modularity(&g, &ld_labels);
        let q_lv = refcheck::modularity(&g, &lv_labels);
        assert!(
            q_ld >= q_lv - 0.05,
            "Leiden q {q_ld} far below Louvain q {q_lv}"
        );
    }

    #[test]
    fn reported_modularity_matches_reference() {
        let g = gen::grid_road(8, 8, 7);
        let (labels, q) = run_leiden(&g, 2, 2);
        let q_ref = refcheck::modularity(&g, &labels);
        assert!((q - q_ref).abs() < 1e-9, "q={q} ref={q_ref}");
        assert!(q > 0.4);
    }

    #[test]
    fn deterministic_across_host_counts() {
        let g = gen::rmat(6, 4, 23);
        let (l1, q1) = run_leiden(&g, 1, 1);
        let (l2, q2) = run_leiden(&g, 3, 2);
        assert!((q1 - q2).abs() < 1e-9, "q1={q1} q2={q2}");
        let canon = |ls: &[NodeId]| {
            let mut seen = HashMap::new();
            ls.iter()
                .map(|&l| {
                    let next = seen.len() as u32;
                    *seen.entry(l).or_insert(next)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(&l1), canon(&l2));
    }
}
