//! Deterministic distributed Louvain community detection (§6.1, LV).
//!
//! Louvain alternates two phases: *refinement* (each node greedily moves to
//! the neighboring community with the best modularity gain) and
//! *coarsening* (communities collapse into single nodes and the process
//! repeats on the aggregated graph).
//!
//! The Kimbap formulation stores a community's aggregate state in its
//! representative node's property, so computing a neighbor community's
//! total weight is a read of a *dynamically computed* node id — the
//! trans-vertex access that adjacent-vertex frameworks cannot express.
//! Per refinement round:
//!
//! 1. rebuild the community-total map (`Sum` reductions keyed by community
//!    representative);
//! 2. request the totals of the active node's own and neighboring
//!    communities (request-compute / request-sync);
//! 3. compute modularity gains, pick the best move (ties to the smallest
//!    community id), write decisions, and broadcast them to mirrors.
//!
//! Louvain runs on an outgoing edge-cut partition (as in the paper, which
//! uses the same edge-cut for Kimbap and Vite), so a master holds all of
//! its node's edges and can decide moves locally.

use crate::builder::MapBuilder;
use kimbap_comm::HostCtx;
use kimbap_dist::{assemble_dist_graph, DistGraph, Policy};
use kimbap_graph::{NodeId, Weight};
use kimbap_npm::{Max, Min, NodePropMap, Sum, SumReducer};
use std::collections::HashMap;

/// Tuning knobs for Louvain/Leiden.
#[derive(Debug, Clone, Copy)]
pub struct LouvainConfig {
    /// Maximum coarsening levels.
    pub max_levels: usize,
    /// Maximum refinement rounds per level.
    pub max_rounds: usize,
    /// Stop refining a level once fewer than this fraction of nodes moved.
    pub min_move_fraction: f64,
    /// Resolution parameter γ of the modularity objective.
    pub resolution: f64,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        LouvainConfig {
            max_levels: 12,
            max_rounds: 48,
            min_move_fraction: 0.005,
            resolution: 1.0,
        }
    }
}

/// Per-host output of [`louvain`] / [`fn@crate::leiden`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommunityResult {
    /// For each level: this host's `(node id at that level, coarse id at
    /// the next level)` for its masters. Compose across hosts and levels
    /// with [`compose_labels`].
    pub mappings: Vec<Vec<(NodeId, NodeId)>>,
    /// Modularity of the final partition (same value on every host).
    pub modularity: f64,
    /// Number of levels executed.
    pub levels: usize,
    /// Node count of the final coarse graph.
    pub final_nodes: usize,
}

/// Composes per-level, per-host mappings into final community labels for
/// the original `n0` nodes. Labels are coarse-node ids of the last level.
pub fn compose_labels(n0: usize, per_host: &[CommunityResult]) -> Vec<NodeId> {
    let levels = per_host.iter().map(|r| r.mappings.len()).max().unwrap_or(0);
    let mut labels: Vec<NodeId> = (0..n0 as NodeId).collect();
    for level in 0..levels {
        // Gather this level's full mapping.
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        for host in per_host {
            if let Some(m) = host.mappings.get(level) {
                map.extend(m.iter().copied());
            }
        }
        for l in labels.iter_mut() {
            *l = *map.get(l).expect("mapping covers every live node");
        }
    }
    labels
}

/// State carried between levels.
pub(crate) struct LevelOutcome {
    /// Master-node -> coarse-id mapping for this host.
    pub(crate) mapping: Vec<(NodeId, NodeId)>,
    /// Aggregated coarse edges produced by this host.
    pub(crate) coarse_edges: Vec<(NodeId, NodeId, Weight)>,
    /// Global number of coarse nodes.
    pub(crate) n_coarse: usize,
    /// Modularity of the partition found at this level.
    pub(crate) modularity: f64,
    /// Did any node change community at this level?
    pub(crate) improved: bool,
}

/// Result of the local-moving phase on one level.
pub(crate) struct MovingOutcome<'g, B: MapBuilder + 'g> {
    /// Community of each master, by master offset.
    pub(crate) cur_comm: Vec<u64>,
    /// The community map, still pinned (mirrors hold current assignments).
    pub(crate) comm: B::Map<'g, u64, Min>,
    /// Weighted degree of each master.
    pub(crate) k: Vec<u64>,
}

/// Runs deterministic Louvain; returns this host's [`CommunityResult`].
/// Collective.
pub fn louvain<B: MapBuilder>(
    dg: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    cfg: &LouvainConfig,
) -> CommunityResult {
    let mut result = CommunityResult::default();
    let mut owned: Option<DistGraph> = None;
    // Total directed edge weight M is invariant under coarsening.
    let local_w: u64 = dg
        .master_nodes()
        .chain(dg.mirror_nodes())
        .map(|l| dg.weighted_degree(l))
        .sum();
    let m_total = ctx.all_reduce_u64(local_w, |a, b| a + b) as f64;

    for _level in 0..cfg.max_levels {
        let outcome = {
            let cur = owned.as_ref().unwrap_or(dg);
            refine_and_aggregate(cur, ctx, b, cfg, m_total, None)
        };
        result.modularity = outcome.modularity;
        result.levels += 1;
        result.final_nodes = outcome.n_coarse;
        result.mappings.push(outcome.mapping);
        let prev_n = owned
            .as_ref()
            .map(|d| d.num_global_nodes())
            .unwrap_or(dg.num_global_nodes());
        let shrunk = outcome.n_coarse < prev_n;
        let next = assemble_dist_graph(
            ctx,
            outcome.n_coarse,
            Policy::EdgeCutBlocked,
            outcome.coarse_edges,
        );
        owned = Some(next);
        if !outcome.improved || !shrunk || outcome.n_coarse <= 1 {
            break;
        }
    }
    result
}

/// The local-moving phase: greedy modularity-gain moves until quiescent
/// (or the round cap). `init_comm` seeds the partition (`None` =
/// singletons) — Leiden seeds levels with the projected partition.
pub(crate) fn local_moving<'g, B: MapBuilder>(
    cur: &'g DistGraph,
    ctx: &HostCtx,
    b: &'g B,
    cfg: &LouvainConfig,
    m_total: f64,
    init_comm: Option<&[u64]>,
) -> MovingOutcome<'g, B> {
    let n = cur.num_global_nodes();
    let masters = cur.num_masters();

    // k[u]: weighted degree of each master. Pure OEC stores all of a
    // node's edges at its master, so a local sum suffices; with split
    // hubs the fragments live on other hosts, so recover the full value
    // with a Sum reduction over every proxy's local fragment, keyed by
    // global id (one extra collective, only in hub mode).
    let k: Vec<u64> = if cur.has_split_hubs() {
        let kmap = b.build::<u64, Sum>(cur, ctx, Sum);
        {
            let km = &kmap;
            ctx.par_for(0..cur.num_local_nodes(), |tid, range| {
                for l in range {
                    let w = cur.weighted_degree(l as u32);
                    if w > 0 {
                        km.reduce(tid, cur.local_to_global(l as u32), w);
                    }
                }
            });
        }
        let mut kmap = kmap;
        kmap.reduce_sync(ctx);
        (0..masters)
            .map(|m| kmap.read(cur.local_to_global(m as u32)))
            .collect()
    } else {
        (0..masters as u32).map(|m| cur.weighted_degree(m)).collect()
    };

    // Current community of each master, host-local; mirrored through the
    // `comm` map for neighbor reads.
    let mut cur_comm: Vec<u64> = match init_comm {
        Some(seed) => seed.to_vec(),
        None => (0..masters).map(|m| cur.local_to_global(m as u32) as u64).collect(),
    };

    let mut comm = b.build::<u64, Min>(cur, ctx, Min);
    for (m, &c) in cur_comm.iter().enumerate() {
        comm.set(cur.local_to_global(m as u32), c);
    }
    comm.pin_mirrors(ctx);

    let mut comm_tot = b.build::<i64, Sum>(cur, ctx, Sum);
    let moves = SumReducer::new();

    for round in 0..cfg.max_rounds {
        // Publish the BSP round so fault plans can target it.
        ctx.set_round(ctx.current_round() + 1);
        // (1) Rebuild community totals from scratch (Sum reductions keyed
        // by community representative — trans-vertex writes).
        comm_tot.reset_values(ctx);
        {
            let ct = &comm_tot;
            let cc = &cur_comm;
            let kk = &k;
            ctx.par_for(0..masters, |tid, range| {
                for m in range {
                    if kk[m] > 0 {
                        ct.reduce(tid, cc[m] as NodeId, kk[m] as i64);
                    }
                }
            });
        }
        comm_tot.reduce_sync(ctx);

        // (2) Request the totals this host's gain computations will read.
        // Every neighbor is a local proxy, so one pass over the proxies
        // covers all communities any edge can reference — O(V_local)
        // requests instead of O(E) (the request bitset de-duplicates
        // anyway; this skips the redundant per-edge reads).
        {
            let (ct, cm) = (&comm_tot, &comm);
            let cc = &cur_comm;
            ctx.par_for(0..cur.num_local_nodes(), |_tid, range| {
                for l in range {
                    let c = if l < masters {
                        cc[l]
                    } else {
                        cm.read(cur.local_to_global(l as u32))
                    };
                    ct.request(c as NodeId);
                }
            });
        }
        comm_tot.request_sync(ctx);

        // (3) Decide moves: best modularity gain, ties to the smallest
        // community id; strict improvement required. Masters decide; with
        // split hubs a hub master sees only its local edge fragment, so
        // its gain estimate is an approximation (community totals and the
        // reported modularity stay exact).
        moves.set(0);
        let decisions: Vec<parking_lot::Mutex<Vec<(usize, u64)>>> =
            (0..ctx.threads()).map(|_| parking_lot::Mutex::new(Vec::new())).collect();
        {
            let (ct, cm) = (&comm_tot, &comm);
            let cc = &cur_comm;
            let kk = &k;
            let decisions = &decisions;
            let moves = &moves;
            let res = cfg.resolution;
            ctx.par_for(0..masters, |tid, range| {
                let mut w_to: HashMap<u64, u64> = HashMap::new();
                let mut out = Vec::new();
                for m in range {
                    let lid = m as u32;
                    let edges = cur.edges(lid);
                    if edges.len() == 0 || kk[m] == 0 {
                        continue;
                    }
                    // Only a deterministic pseudo-random half of the nodes
                    // may move each round. Fully synchronous moves act on
                    // stale community totals: if every node of a grid joins
                    // its min-id neighbor at once, communities overshoot
                    // into giant blobs and modularity collapses. Gating
                    // moves damps the overshoot while staying deterministic
                    // and partition-independent (Vite gets the same effect
                    // from intra-host serialization of its atomic updates).
                    let g = cur.local_to_global(lid) as u64;
                    if move_gate(g, round) {
                        continue;
                    }
                    let my_comm = cc[m];
                    let ku = kk[m] as f64;
                    w_to.clear();
                    let gu = cur.local_to_global(lid);
                    edges.for_each(|(dst, w)| {
                        let gv = cur.local_to_global(dst);
                        if gv != gu {
                            // self-loops stay internal anywhere
                            *w_to.entry(cm.read(gv)).or_default() += w;
                        }
                    });
                    // Score of staying (community totals exclude u itself).
                    let stay_w = *w_to.get(&my_comm).unwrap_or(&0) as f64;
                    let stay_tot = (ct.read(my_comm as NodeId) - kk[m] as i64) as f64;
                    let stay_score = stay_w - res * stay_tot * ku / m_total;
                    let mut best_score = stay_score;
                    let mut best_comm = my_comm;
                    for (&c, &w_uc) in w_to.iter() {
                        if c == my_comm {
                            continue;
                        }
                        let tot_c = ct.read(c as NodeId) as f64;
                        let score = w_uc as f64 - res * tot_c * ku / m_total;
                        let eps = 1e-12;
                        if score > best_score + eps
                            || (score > best_score - eps && c < best_comm)
                        {
                            best_score = score;
                            best_comm = c;
                        }
                    }
                    if best_comm != my_comm {
                        out.push((m, best_comm));
                        moves.reduce(1);
                    }
                }
                if !out.is_empty() {
                    decisions[tid].lock().extend(out);
                }
            });
        }

        // Apply decisions and publish them to mirrors.
        comm.reset_updated();
        for d in decisions {
            for (m, c) in d.into_inner() {
                cur_comm[m] = c;
                comm.set(cur.local_to_global(m as u32), c);
            }
        }
        comm.broadcast_sync(ctx);

        let total_moves = moves.read(ctx);
        if (total_moves as f64) < cfg.min_move_fraction * n as f64 {
            break;
        }
    }

    MovingOutcome { cur_comm, comm, k }
}

/// Modularity `Q = Σ_C [ in_C/M − (tot_C/M)² ]` of the partition described
/// by `cur_comm` / `comm`. Collective.
pub(crate) fn modularity_of<B: MapBuilder>(
    cur: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    cur_comm: &[u64],
    comm: &impl NodePropMap<u64>,
    k: &[u64],
    m_total: f64,
) -> f64 {
    let masters = cur.num_masters();

    // Community totals.
    let mut comm_tot = b.build::<i64, Sum>(cur, ctx, Sum);
    {
        let ct = &comm_tot;
        let cc = &cur_comm;
        ctx.par_for(0..masters, |tid, range| {
            for m in range {
                if k[m] > 0 {
                    ct.reduce(tid, cc[m] as NodeId, k[m] as i64);
                }
            }
        });
    }
    comm_tot.reduce_sync(ctx);

    // Internal weight per community (for modularity). Every local edge is
    // stored at exactly one proxy, so summing over masters covers all
    // edges under pure OEC; with split hubs the mirror fragments carry
    // edges too, so the loop widens to every proxy (a mirror's community
    // is its pinned broadcast value).
    let span = if cur.has_split_hubs() {
        cur.num_local_nodes()
    } else {
        masters
    };
    let mut internal = b.build::<u64, Sum>(cur, ctx, Sum);
    {
        let (cm, int) = (&comm, &internal);
        let cc = &cur_comm;
        ctx.par_for(0..span, |tid, range| {
            for l in range {
                let lid = l as u32;
                let edges = cur.edges(lid);
                if l >= masters && edges.len() == 0 {
                    continue;
                }
                let cu = if l < masters {
                    cc[l]
                } else {
                    cm.read(cur.local_to_global(lid))
                };
                let gu = cur.local_to_global(lid);
                edges.for_each(|(dst, w)| {
                    let gv = cur.local_to_global(dst);
                    let cv = if gv == gu { cu } else { cm.read(gv) };
                    if cv == cu {
                        int.reduce(tid, cu as NodeId, w);
                    }
                });
            }
        });
    }
    internal.reduce_sync(ctx);

    // Q = Σ_C [ in_C/M − (tot_C/M)² ], summed over community reps we own.
    let local_q: f64 = cur
        .master_nodes()
        .map(|mm| {
            let g = cur.local_to_global(mm);
            let tot = comm_tot.read(g);
            if tot == 0 {
                return 0.0;
            }
            let in_c = internal.read(g) as f64;
            in_c / m_total - (tot as f64 / m_total) * (tot as f64 / m_total)
        })
        .sum();
    ctx.all_reduce(local_q, |a, b| a + b)
}

/// One Louvain level on `cur`: local-moving refinement, then aggregation.
pub(crate) fn refine_and_aggregate<B: MapBuilder>(
    cur: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    cfg: &LouvainConfig,
    m_total: f64,
    init_comm: Option<&[u64]>,
) -> LevelOutcome {
    let moving = local_moving(cur, ctx, b, cfg, m_total, init_comm);
    let modularity = modularity_of(cur, ctx, b, &moving.cur_comm, &moving.comm, &moving.k, m_total);
    let (mapping, coarse_edges, n_coarse, improved) =
        aggregate(cur, ctx, b, &moving.cur_comm, &moving.comm);

    LevelOutcome {
        mapping,
        coarse_edges,
        n_coarse,
        modularity,
        improved,
    }
}

/// Outcome of [`aggregate`]: `(mapping, coarse edges, coarse node count,
/// improved)`.
pub(crate) type AggregateOutcome = (
    Vec<(NodeId, NodeId)>,
    Vec<(NodeId, NodeId, Weight)>,
    usize,
    bool,
);

/// Collapses communities into coarse nodes: assigns dense coarse ids to
/// used communities, maps every master to its coarse id, and aggregates
/// local edges by coarse endpoint pair.
pub(crate) fn aggregate<B: MapBuilder>(
    cur: &DistGraph,
    ctx: &HostCtx,
    b: &B,
    cur_comm: &[u64],
    comm: &impl NodePropMap<u64>,
) -> AggregateOutcome {
    let masters = cur.num_masters();

    // Mark used community representatives.
    let mut used = b.build::<u64, Max>(cur, ctx, Max);
    {
        let u = &used;
        let cc = cur_comm;
        ctx.par_for(0..masters, |tid, range| {
            for m in range {
                u.reduce(tid, cc[m] as NodeId, 1);
            }
        });
    }
    used.reduce_sync(ctx);

    // Dense coarse ids: rank among used reps, offset by host prefix.
    let my_used: Vec<NodeId> = cur
        .master_nodes()
        .map(|m| cur.local_to_global(m))
        .filter(|&g| used.read(g) == 1)
        .collect();
    let counts = ctx.all_gather(my_used.len() as u64);
    let offset: u64 = counts[..ctx.host()].iter().sum();
    let n_coarse: u64 = counts.iter().sum();

    let mut newid = b.build::<u64, Min>(cur, ctx, Min);
    for (rank, &g) in my_used.iter().enumerate() {
        newid.set(g, offset + rank as u64);
    }

    // Every proxy with local edges needs the coarse id of its own
    // community and of each neighbor's community. Under pure OEC only
    // masters carry edges; with split hubs the mirror fragments do too —
    // skipping them would drop their edges from the coarse graph.
    let span = if cur.has_split_hubs() {
        cur.num_local_nodes()
    } else {
        masters
    };
    {
        let (ni, cm) = (&newid, comm);
        let cc = cur_comm;
        ctx.par_for(0..span, |_tid, range| {
            for l in range {
                let lid = l as u32;
                let edges = cur.edges(lid);
                if l >= masters && edges.len() == 0 {
                    continue;
                }
                let cu = if l < masters {
                    cc[l]
                } else {
                    cm.read(cur.local_to_global(lid))
                };
                ni.request(cu as NodeId);
                for (dst, _) in edges {
                    ni.request(cm.read(cur.local_to_global(dst)) as NodeId);
                }
            }
        });
    }
    newid.request_sync(ctx);

    // Emit mapping + aggregated coarse edges.
    let mapping: Vec<(NodeId, NodeId)> = (0..masters)
        .map(|m| {
            (
                cur.local_to_global(m as u32),
                newid.read(cur_comm[m] as NodeId) as NodeId,
            )
        })
        .collect();

    let agg: parking_lot::Mutex<HashMap<(NodeId, NodeId), Weight>> =
        parking_lot::Mutex::new(HashMap::new());
    {
        let (ni, cm) = (&newid, comm);
        let cc = cur_comm;
        let agg = &agg;
        ctx.par_for(0..span, |_tid, range| {
            let mut local: HashMap<(NodeId, NodeId), Weight> = HashMap::new();
            for l in range {
                let lid = l as u32;
                let edges = cur.edges(lid);
                if l >= masters && edges.len() == 0 {
                    continue;
                }
                let cu_comm = if l < masters {
                    cc[l]
                } else {
                    cm.read(cur.local_to_global(lid))
                };
                let cu = ni.read(cu_comm as NodeId) as NodeId;
                for (dst, w) in edges {
                    let gv = cur.local_to_global(dst);
                    let cv_comm = if gv == cur.local_to_global(lid) {
                        cu_comm
                    } else {
                        cm.read(gv)
                    };
                    let cv = ni.read(cv_comm as NodeId) as NodeId;
                    *local.entry((cu, cv)).or_default() += w;
                }
            }
            if !local.is_empty() {
                let mut g = agg.lock();
                for (k, w) in local {
                    *g.entry(k).or_default() += w;
                }
            }
        });
    }
    // Sort: HashMap iteration order is per-process random, and these
    // edges go over the wire — unsorted they break byte-level replay
    // determinism on the simulation backend.
    let mut coarse_edges: Vec<(NodeId, NodeId, Weight)> = agg
        .into_inner()
        .into_iter()
        .map(|((u, v), w)| (u, v, w))
        .collect();
    coarse_edges.sort_unstable();

    // Improvement check: did anyone leave its singleton?
    let moved_local = mapping_changes_anything(cur, cur_comm);
    let improved = ctx.all_reduce_or(moved_local);

    (mapping, coarse_edges, n_coarse as usize, improved)
}

/// Deterministic per-round move gate: nodes whose hash parity mismatches
/// the round must wait (damps synchronous-move overshoot).
fn move_gate(g: u64, round: usize) -> bool {
    let mut h = g ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h & 1 == 1
}

/// `true` if any master's community differs from itself (i.e. refinement
/// produced a non-singleton partition).
fn mapping_changes_anything(cur: &DistGraph, cur_comm: &[u64]) -> bool {
    cur_comm
        .iter()
        .enumerate()
        .any(|(m, &c)| c != cur.local_to_global(m as u32) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NpmBuilder;
    use crate::refcheck;
    use kimbap_comm::Cluster;
    use kimbap_dist::partition;
    use kimbap_graph::{builder::from_edges, gen, Graph};

    fn run_louvain(g: &Graph, hosts: usize, threads: usize) -> (Vec<NodeId>, f64) {
        let parts = partition(g, Policy::EdgeCutBlocked, hosts);
        let b = NpmBuilder::default();
        let cfg = LouvainConfig::default();
        let results = Cluster::with_threads(hosts, threads)
            .run(|ctx| louvain(&parts[ctx.host()], ctx, &b, &cfg));
        let q = results[0].modularity;
        let labels = compose_labels(g.num_nodes(), &results);
        (labels, q)
    }

    /// Two 5-cliques joined by one edge: Louvain must find the cliques.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b, 1));
                edges.push((a + 5, b + 5, 1));
            }
        }
        edges.push((0, 5, 1));
        from_edges(edges)
    }

    #[test]
    fn finds_cliques() {
        let g = two_cliques();
        let (labels, q) = run_louvain(&g, 2, 2);
        // All of clique 1 in one community, clique 2 in another.
        assert!(labels[0..5].iter().all(|&l| l == labels[0]));
        assert!(labels[5..10].iter().all(|&l| l == labels[5]));
        assert_ne!(labels[0], labels[5]);
        // Reported modularity matches a reference computation.
        let q_ref = refcheck::modularity(&g, &labels);
        assert!((q - q_ref).abs() < 1e-9, "q={q} ref={q_ref}");
        assert!(q > 0.3);
    }

    #[test]
    fn ring_of_cliques() {
        // 4 cliques of 6 nodes in a ring — the classic Louvain testbed.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 6;
            for a in 0..6 {
                for b in (a + 1)..6 {
                    edges.push((base + a, base + b, 1));
                }
            }
            edges.push((base, ((c + 1) % 4) * 6, 1));
        }
        let g = from_edges(edges);
        let (labels, q) = run_louvain(&g, 3, 2);
        for c in 0..4u32 {
            let base = (c * 6) as usize;
            assert!(
                (base..base + 6).all(|i| labels[i] == labels[base]),
                "clique {c} split: {labels:?}"
            );
        }
        assert!(q > 0.6, "q = {q}");
    }

    #[test]
    fn deterministic_across_hosts() {
        let g = gen::rmat(7, 4, 13);
        let (l1, q1) = run_louvain(&g, 1, 1);
        let (l2, q2) = run_louvain(&g, 4, 2);
        // Labels are coarse ids whose numbering depends on host count, but
        // the partition structure and modularity must agree.
        assert!((q1 - q2).abs() < 1e-9, "q1={q1} q2={q2}");
        let canon = |ls: &[NodeId]| {
            let mut seen = HashMap::new();
            ls.iter()
                .map(|&l| {
                    let next = seen.len() as u32;
                    *seen.entry(l).or_insert(next)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(&l1), canon(&l2));
    }

    #[test]
    fn improves_modularity_on_power_law() {
        let g = gen::rmat(8, 8, 21);
        let (labels, q) = run_louvain(&g, 2, 2);
        let q_ref = refcheck::modularity(&g, &labels);
        assert!((q - q_ref).abs() < 1e-9);
        // Better than the trivial all-singleton partition (Q < 0) and the
        // one-community partition (Q = 0 at best).
        assert!(q > 0.0, "q = {q}");
    }

    #[test]
    fn hub_split_louvain_reports_exact_modularity() {
        // Partition with hub splitting: mirrors carry hub edge fragments,
        // exercising the widened k / modularity / aggregation paths. The
        // reported modularity must still match a single-machine reference
        // computation on the composed labels.
        let g = gen::rmat(7, 8, 13);
        let hosts = 4;
        let mut pcfg = kimbap_dist::PartitionCfg::new(Policy::EdgeCutBlocked, hosts);
        pcfg.hub_degree_threshold = Some(16);
        let parts = kimbap_dist::partition_cfg(&g, &pcfg);
        assert!(parts[0].has_split_hubs(), "test graph must have hubs");
        let b = NpmBuilder::default();
        let cfg = LouvainConfig::default();
        let results = Cluster::with_threads(hosts, 2)
            .run(|ctx| louvain(&parts[ctx.host()], ctx, &b, &cfg));
        let labels = compose_labels(g.num_nodes(), &results);
        let q = results[0].modularity;
        let q_ref = refcheck::modularity(&g, &labels);
        assert!((q - q_ref).abs() < 1e-9, "q={q} ref={q_ref}");
        assert!(q > 0.0, "q = {q}");
    }

    #[test]
    fn grid_communities_are_local() {
        let g = gen::grid_road(8, 8, 5);
        let (labels, q) = run_louvain(&g, 2, 2);
        assert!(q > 0.5, "grids have strong locality, q = {q}");
        refcheck::check_communities(&g, &labels).unwrap_or_else(|e| panic!("{e}"));
    }
}
