//! Single-threaded reference implementations used to validate the
//! distributed algorithms. These are deliberately simple and obviously
//! correct rather than fast.

use kimbap_graph::{Graph, NodeId};

/// Union-find with path compression (no ranks: union by min label so the
/// representative is the smallest id, matching the distributed outputs).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    /// Representative (smallest id) of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        if self.parent[x as usize] != x {
            let root = self.find(self.parent[x as usize]);
            self.parent[x as usize] = root;
        }
        self.parent[x as usize]
    }

    /// Merges the sets of `a` and `b`; the smaller representative wins.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.parent[hi as usize] = lo;
    }
}

/// Labels every node with the minimum node id in its component.
pub fn connected_components(g: &Graph) -> Vec<u64> {
    let mut uf = UnionFind::new(g.num_nodes());
    for (u, v, _) in g.all_edges() {
        uf.union(u, v);
    }
    (0..g.num_nodes() as u32)
        .map(|u| uf.find(u) as u64)
        .collect()
}

/// Total weight of a minimum spanning forest (Kruskal). For graphs with
/// duplicate weights the forest itself may differ between algorithms, but
/// the total weight of any MSF is unique given a consistent total order;
/// with the `(weight, src, dst)` tie-break used by the distributed Boruvka,
/// weights are effectively distinct, so total weights must match exactly.
pub fn msf_weight(g: &Graph) -> u64 {
    let mut edges: Vec<(u64, u32, u32)> = g
        .all_edges()
        .filter(|&(u, v, _)| u < v)
        .map(|(u, v, w)| (w, u, v))
        .collect();
    edges.sort_unstable();
    let mut uf = UnionFind::new(g.num_nodes());
    let mut total = 0;
    for (w, u, v) in edges {
        if uf.find(u) != uf.find(v) {
            uf.union(u, v);
            total += w;
        }
    }
    total
}

/// Number of edges in any spanning forest: `n - #components`.
pub fn msf_edge_count(g: &Graph) -> usize {
    let labels = connected_components(g);
    let mut roots: Vec<u64> = labels.clone();
    roots.sort_unstable();
    roots.dedup();
    g.num_nodes() - roots.len()
}

/// Checks that `in_set` is a valid *maximal* independent set of `g`:
/// no two set members are adjacent, and every non-member has a member
/// neighbor. Returns an error describing the first violation.
pub fn check_mis(g: &Graph, in_set: &[bool]) -> Result<(), String> {
    assert_eq!(in_set.len(), g.num_nodes());
    for u in g.nodes() {
        if in_set[u as usize] {
            for v in g.neighbors(u).iter() {
                if *v != u && in_set[*v as usize] {
                    return Err(format!("adjacent nodes {u} and {v} both in set"));
                }
            }
        } else {
            let covered = g.neighbors(u).iter().any(|&v| in_set[v as usize]);
            if !covered && g.degree(u) > 0 {
                return Err(format!("node {u} is not in the set and has no set neighbor"));
            }
            if g.degree(u) == 0 {
                return Err(format!("isolated node {u} must be in the set"));
            }
        }
    }
    Ok(())
}

/// Directed modularity of an assignment: `Q = Σ_C [ in_C/M − (tot_C/M)² ]`,
/// where `M` is the total directed edge weight, `in_C` the directed weight
/// inside `C`, and `tot_C` the summed weighted degree of `C`'s nodes.
pub fn modularity(g: &Graph, communities: &[NodeId]) -> f64 {
    assert_eq!(communities.len(), g.num_nodes());
    let m = g.total_weight() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut internal: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    let mut tot: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    for u in g.nodes() {
        *tot.entry(communities[u as usize]).or_default() += g.weighted_degree(u);
        for (v, w) in g.edges(u) {
            if communities[u as usize] == communities[v as usize] {
                *internal.entry(communities[u as usize]).or_default() += w;
            }
        }
    }
    tot.iter()
        .map(|(c, &t)| {
            let i = internal.get(c).copied().unwrap_or(0) as f64;
            i / m - (t as f64 / m).powi(2)
        })
        .sum()
}

/// Checks a community assignment is well-formed: every label is a valid
/// node id and connected nodes in one community are actually connected via
/// the community (weak check: label exists).
pub fn check_communities(g: &Graph, communities: &[NodeId]) -> Result<(), String> {
    if communities.len() != g.num_nodes() {
        return Err("wrong assignment length".into());
    }
    for (u, &c) in communities.iter().enumerate() {
        if c as usize >= g.num_nodes() {
            return Err(format!("node {u} assigned to invalid community {c}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_graph::{builder::from_edges, gen};

    #[test]
    fn union_find_min_labels() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 4);
        uf.union(1, 3);
        assert_eq!(uf.find(4), 1);
        assert_eq!(uf.find(0), 0);
    }

    #[test]
    fn cc_on_two_triangles() {
        let g = from_edges([(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1), (4, 5, 1), (5, 3, 1)]);
        assert_eq!(connected_components(&g), vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn kruskal_weight_on_square() {
        // Square with diagonal: MST picks the three lightest edges that
        // connect everything.
        let g = from_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 10)]);
        assert_eq!(msf_weight(&g), 6);
        assert_eq!(msf_edge_count(&g), 3);
    }

    #[test]
    fn mis_checker_accepts_valid() {
        let g = from_edges([(0, 1, 1), (1, 2, 1)]);
        assert!(check_mis(&g, &[true, false, true]).is_ok());
        assert!(check_mis(&g, &[true, true, false]).is_err()); // adjacent
        assert!(check_mis(&g, &[true, false, false]).is_err()); // not maximal
    }

    #[test]
    fn modularity_of_perfect_split() {
        // Two disconnected triangles, each its own community: Q = 1/2.
        let g = from_edges([(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1), (4, 5, 1), (5, 3, 1)]);
        let q = modularity(&g, &[0, 0, 0, 3, 3, 3]);
        assert!((q - 0.5).abs() < 1e-9, "q = {q}");
        // Everything in one community: Q = 0 minus the degree term.
        let q1 = modularity(&g, &[0; 6]);
        assert!(q1 < q);
    }

    #[test]
    fn modularity_empty_graph() {
        let g = kimbap_graph::GraphBuilder::new().build();
        assert_eq!(modularity(&g, &[]), 0.0);
    }

    #[test]
    fn msf_weight_matches_grid_structure() {
        let g = gen::grid_road(5, 5, 2);
        let w = msf_weight(&g);
        assert!(w > 0);
        assert_eq!(msf_edge_count(&g), 24); // spanning tree of 25 nodes
    }
}
