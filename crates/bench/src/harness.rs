//! Timing and reporting helpers for the figure/table benches.

use kimbap_comm::{Cluster, HostCtx};
use kimbap_dist::DistGraph;
use std::time::Instant;

/// One measured run: wall-clock split into computation and communication
/// (the stacked bars of Figs. 11 and 12), plus traffic counters and the
/// per-phase breakdown engines report through `HostCtx::add_phase_nanos`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total wall-clock seconds (max over hosts, measured inside the SPMD
    /// closure — cluster spawn/teardown is excluded).
    pub secs: f64,
    /// Seconds inside communication calls (max over hosts).
    pub comm_secs: f64,
    /// Messages sent between hosts (sum).
    pub messages: u64,
    /// Payload bytes sent between hosts (sum).
    pub bytes: u64,
    /// Frames re-sent after loss or corruption (sum over hosts; zero in
    /// fault-free runs).
    pub retransmits: u64,
    /// Received frames rejected by length/CRC validation (sum over hosts).
    pub crc_rejects: u64,
    /// Collectives aborted on heartbeat suspicion (sum over hosts).
    pub heartbeat_suspicions: u64,
    /// Collectives aborted on a phase deadline (sum over hosts).
    pub timeout_aborts: u64,
    /// Membership generations agreed past permanent host loss (max over
    /// hosts: every survivor of the same shrink counts it once).
    pub membership_changes: u64,
    /// BSP rounds executed on a shrunk membership (max over hosts).
    pub degraded_rounds: u64,
    /// Master keys received from other hosts by re-shard exchanges after
    /// a shrink (sum over hosts).
    pub resharded_keys: u64,
    /// Hosts admitted into the membership by grow agreements (max over
    /// hosts: every participant of the same grow counts it once).
    pub joins: u64,
    /// Master keys received from other hosts by grow re-shard exchanges
    /// after a join (sum over hosts).
    pub grow_resharded_keys: u64,
    /// Seconds in the request-compute phase (max over hosts; zero unless
    /// the workload reports phases).
    pub request_compute_secs: f64,
    /// Seconds in request-sync collectives (max over hosts).
    pub request_sync_secs: f64,
    /// Seconds in the reduce-compute phase (max over hosts).
    pub reduce_compute_secs: f64,
    /// Seconds in reduce-sync/broadcast-sync collectives (max over hosts).
    pub reduce_sync_secs: f64,
    /// Seconds of compute/communication overlap won by split-phase
    /// collectives: time between a ticket's first posted chunk and its
    /// finish call (max over hosts; zero when pipelining is off).
    pub overlap_secs: f64,
    /// Wire chunks sent by the chunked framing layer (sum over hosts).
    pub chunks_sent: u64,
    /// Individual chunks re-sent on targeted retransmit requests (sum
    /// over hosts; zero in fault-free runs).
    pub chunk_retransmits: u64,
    /// Serve-layer result-cache hits (sum over hosts; zero unless a
    /// serving layer answered queries from its cache).
    pub cache_hits: u64,
    /// Serve-layer result-cache misses (sum over hosts).
    pub cache_misses: u64,
    /// Serve-layer result-cache evictions, capacity or epoch-purge (sum
    /// over hosts).
    pub cache_evictions: u64,
    /// Local graph storage, summed over hosts (raw CSR arrays or the
    /// compressed tier's blocks — whatever the partitions carry).
    pub graph_bytes: u64,
    /// The largest single host's local graph storage — the number hub
    /// splitting is meant to cap on power-law inputs.
    pub max_host_graph_bytes: u64,
    /// Peak resident set of the bench process (`VmHWM`), in bytes; 0 on
    /// platforms without `/proc`. All simulated hosts share the process,
    /// so this is a cluster-wide high-water mark.
    pub peak_rss_bytes: u64,
}

impl RunStats {
    /// Computation seconds (wall minus communication).
    pub fn comp_secs(&self) -> f64 {
        (self.secs - self.comm_secs).max(0.0)
    }
}

/// This process's peak resident set (`VmHWM` from `/proc/self/status`),
/// in bytes; 0 where that interface doesn't exist.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs `f` SPMD over the pre-partitioned graph and measures it.
///
/// Timing starts *inside* the SPMD closure, after a barrier and a stats
/// reset, and `secs` is the max of the per-host elapsed times — so thread
/// spawn and cluster teardown never pollute the measurement, and counters
/// accumulated by earlier runs on a reused context are discarded.
pub fn run_timed<R: Send>(
    parts: &[DistGraph],
    threads: usize,
    f: impl Fn(&DistGraph, &HostCtx) -> R + Sync,
) -> (Vec<R>, RunStats) {
    let hosts = parts.len();
    let results = Cluster::with_threads(hosts, threads).run(|ctx| {
        ctx.barrier();
        ctx.reset_stats();
        let start = Instant::now();
        let r = f(&parts[ctx.host()], ctx);
        (r, start.elapsed().as_secs_f64(), ctx.stats())
    });
    let mut stats = RunStats::default();
    let mut out = Vec::with_capacity(hosts);
    for (r, secs, s) in results {
        stats.secs = stats.secs.max(secs);
        stats.comm_secs = stats.comm_secs.max(s.comm_nanos as f64 / 1e9);
        stats.messages += s.messages;
        stats.bytes += s.bytes;
        stats.retransmits += s.retransmits;
        stats.crc_rejects += s.crc_rejects;
        stats.heartbeat_suspicions += s.heartbeat_suspicions;
        stats.timeout_aborts += s.timeout_aborts;
        stats.membership_changes = stats.membership_changes.max(s.membership_changes);
        stats.degraded_rounds = stats.degraded_rounds.max(s.degraded_rounds);
        stats.resharded_keys += s.resharded_keys;
        stats.joins = stats.joins.max(s.joins);
        stats.grow_resharded_keys += s.grow_resharded_keys;
        stats.request_compute_secs =
            stats.request_compute_secs.max(s.request_compute_nanos as f64 / 1e9);
        stats.request_sync_secs = stats.request_sync_secs.max(s.request_sync_nanos as f64 / 1e9);
        stats.reduce_compute_secs =
            stats.reduce_compute_secs.max(s.reduce_compute_nanos as f64 / 1e9);
        stats.reduce_sync_secs = stats.reduce_sync_secs.max(s.reduce_sync_nanos as f64 / 1e9);
        stats.overlap_secs = stats.overlap_secs.max(s.overlap_nanos as f64 / 1e9);
        stats.chunks_sent += s.chunks_sent;
        stats.chunk_retransmits += s.chunk_retransmits;
        stats.cache_hits += s.cache_hits;
        stats.cache_misses += s.cache_misses;
        stats.cache_evictions += s.cache_evictions;
        out.push(r);
    }
    stats.graph_bytes = parts.iter().map(|p| p.size_bytes() as u64).sum();
    stats.max_host_graph_bytes = parts
        .iter()
        .map(|p| p.size_bytes() as u64)
        .max()
        .unwrap_or(0);
    stats.peak_rss_bytes = peak_rss_bytes();
    (out, stats)
}

/// Prints a bench title banner.
pub fn print_title(title: &str, note: &str) {
    println!("\n================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("================================================================");
}

/// Prints one aligned result row.
pub fn print_row(cols: &[String]) {
    let widths = [14usize, 22, 8, 10, 10, 10, 12, 12];
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(10);
        line.push_str(&format!("{c:<w$} "));
    }
    println!("{}", line.trim_end());
}
