//! Timing and reporting helpers for the figure/table benches.

use kimbap_comm::{Cluster, HostCtx};
use kimbap_dist::DistGraph;
use std::time::Instant;

/// One measured run: wall-clock split into computation and communication
/// (the stacked bars of Figs. 11 and 12), plus traffic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total wall-clock seconds.
    pub secs: f64,
    /// Seconds inside communication calls (max over hosts).
    pub comm_secs: f64,
    /// Messages sent between hosts (sum).
    pub messages: u64,
    /// Payload bytes sent between hosts (sum).
    pub bytes: u64,
}

impl RunStats {
    /// Computation seconds (wall minus communication).
    pub fn comp_secs(&self) -> f64 {
        (self.secs - self.comm_secs).max(0.0)
    }
}

/// Runs `f` SPMD over the pre-partitioned graph and measures it.
pub fn run_timed<R: Send>(
    parts: &[DistGraph],
    threads: usize,
    f: impl Fn(&DistGraph, &HostCtx) -> R + Sync,
) -> (Vec<R>, RunStats) {
    let hosts = parts.len();
    let start = Instant::now();
    let results = Cluster::with_threads(hosts, threads).run(|ctx| {
        let r = f(&parts[ctx.host()], ctx);
        (r, ctx.stats())
    });
    let secs = start.elapsed().as_secs_f64();
    let mut stats = RunStats {
        secs,
        ..RunStats::default()
    };
    let mut out = Vec::with_capacity(hosts);
    for (r, s) in results {
        stats.comm_secs = stats.comm_secs.max(s.comm_nanos as f64 / 1e9);
        stats.messages += s.messages;
        stats.bytes += s.bytes;
        out.push(r);
    }
    (out, stats)
}

/// Prints a bench title banner.
pub fn print_title(title: &str, note: &str) {
    println!("\n================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("================================================================");
}

/// Prints one aligned result row.
pub fn print_row(cols: &[String]) {
    let widths = [14usize, 22, 8, 10, 10, 10, 12, 12];
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(10);
        line.push_str(&format!("{c:<w$} "));
    }
    println!("{}", line.trim_end());
}
