//! Machine-readable bench records for the tracked `BENCH_<date>.json`.
//!
//! The figure/table benches print human-oriented tables; CI and the perf
//! history additionally want numbers a script can diff. When the
//! `KIMBAP_BENCH_JSON` environment variable names a file, every measured
//! case appends one JSON object per line (JSONL) there; `scripts/bench.sh`
//! wraps the lines into the committed `BENCH_<date>.json`. With the
//! variable unset, recording is a no-op, so `cargo bench` behaves exactly
//! as before.

use crate::RunStats;
use std::fs::OpenOptions;
use std::io::Write;

/// The environment variable naming the JSONL sink.
pub const ENV_JSON: &str = "KIMBAP_BENCH_JSON";

fn escape(s: &str) -> String {
    // Bench/case names are ASCII identifiers and paths; escape the two
    // characters that could break a JSON string anyway.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn append_line(path: &str, line: &str) {
    let file = OpenOptions::new().create(true).append(true).open(path);
    match file {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("warning: failed to write bench record to {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: failed to open bench record file {path}: {e}"),
    }
}

fn record_run_to(path: &str, bench: &str, case: &str, system: &str, hosts: usize, s: &RunStats) {
    append_line(
        path,
        &format!(
            concat!(
                "{{\"bench\":\"{}\",\"case\":\"{}\",\"system\":\"{}\",\"hosts\":{},",
                "\"secs\":{:.6},\"comm_secs\":{:.6},\"messages\":{},\"bytes\":{},",
                "\"retransmits\":{},\"crc_rejects\":{},",
                "\"heartbeat_suspicions\":{},\"timeout_aborts\":{},",
                "\"membership_changes\":{},\"degraded_rounds\":{},",
                "\"resharded_keys\":{},",
                "\"joins\":{},\"grow_resharded_keys\":{},",
                "\"request_compute_secs\":{:.6},\"request_sync_secs\":{:.6},",
                "\"reduce_compute_secs\":{:.6},\"reduce_sync_secs\":{:.6},",
                "\"overlap_secs\":{:.6},\"chunks_sent\":{},\"chunk_retransmits\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},",
                "\"graph_bytes\":{},\"max_host_graph_bytes\":{},",
                "\"peak_rss_bytes\":{}}}"
            ),
            escape(bench),
            escape(case),
            escape(system),
            hosts,
            s.secs,
            s.comm_secs,
            s.messages,
            s.bytes,
            s.retransmits,
            s.crc_rejects,
            s.heartbeat_suspicions,
            s.timeout_aborts,
            s.membership_changes,
            s.degraded_rounds,
            s.resharded_keys,
            s.joins,
            s.grow_resharded_keys,
            s.request_compute_secs,
            s.request_sync_secs,
            s.reduce_compute_secs,
            s.reduce_sync_secs,
            s.overlap_secs,
            s.chunks_sent,
            s.chunk_retransmits,
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
            s.graph_bytes,
            s.max_host_graph_bytes,
            s.peak_rss_bytes,
        ),
    );
}

/// One storage-footprint measurement from the `max_graph_size` bench: no
/// timings, just how many bytes a graph (or its per-host partitions) cost
/// on a given storage tier.
#[derive(Debug, Clone, Copy)]
pub struct SizeRecord {
    /// Hosts the graph was partitioned over (1 = whole graph, unsplit).
    pub hosts: usize,
    /// Edges in the graph (for the bytes-per-edge division).
    pub num_edges: u64,
    /// Storage bytes, summed over hosts.
    pub graph_bytes: u64,
    /// The largest single host's storage bytes.
    pub max_host_graph_bytes: u64,
    /// Process peak RSS after building, in bytes.
    pub peak_rss_bytes: u64,
}

fn record_size_to(path: &str, bench: &str, case: &str, system: &str, r: &SizeRecord) {
    let bpe = r.graph_bytes as f64 / (r.num_edges.max(1)) as f64;
    append_line(
        path,
        &format!(
            concat!(
                "{{\"bench\":\"{}\",\"case\":\"{}\",\"system\":\"{}\",\"hosts\":{},",
                "\"num_edges\":{},\"graph_bytes\":{},\"max_host_graph_bytes\":{},",
                "\"bytes_per_edge\":{:.3},\"peak_rss_bytes\":{}}}"
            ),
            escape(bench),
            escape(case),
            escape(system),
            r.hosts,
            r.num_edges,
            r.graph_bytes,
            r.max_host_graph_bytes,
            bpe,
            r.peak_rss_bytes,
        ),
    );
}

/// One BSP round of a frontier-execution record: how many nodes the
/// round's reduce-compute actually ran, cluster-wide.
#[derive(Debug, Clone, Copy)]
pub struct RoundRecord {
    /// Global round number (1-based).
    pub round: u64,
    /// Nodes executed, summed across hosts.
    pub active: u64,
    /// Dense iterator extent, summed across hosts.
    pub total: u64,
    /// Whether every host took the sparse path this round.
    pub sparse: bool,
    /// Reduce-compute seconds (max over hosts).
    pub reduce_compute_secs: f64,
}

fn record_rounds_to(
    path: &str,
    bench: &str,
    case: &str,
    system: &str,
    hosts: usize,
    rounds: &[RoundRecord],
) {
    let items: Vec<String> = rounds
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"round\":{},\"active\":{},\"total\":{},",
                    "\"sparse\":{},\"reduce_compute_secs\":{:.6}}}"
                ),
                r.round, r.active, r.total, r.sparse, r.reduce_compute_secs,
            )
        })
        .collect();
    append_line(
        path,
        &format!(
            "{{\"bench\":\"{}\",\"case\":\"{}\",\"system\":\"{}\",\"hosts\":{},\"rounds\":[{}]}}",
            escape(bench),
            escape(case),
            escape(system),
            hosts,
            items.join(","),
        ),
    );
}

fn record_micro_to(path: &str, bench: &str, case: &str, ns_per_iter: f64) {
    append_line(
        path,
        &format!(
            "{{\"bench\":\"{}\",\"case\":\"{}\",\"ns_per_iter\":{:.1}}}",
            escape(bench),
            escape(case),
            ns_per_iter,
        ),
    );
}

/// Records one measured macro-bench case (a `run_timed` result) if
/// `KIMBAP_BENCH_JSON` is set.
pub fn record(bench: &str, case: &str, system: &str, hosts: usize, stats: &RunStats) {
    if let Ok(path) = std::env::var(ENV_JSON) {
        record_run_to(&path, bench, case, system, hosts, stats);
    }
}

/// Records one micro-bench result (nanoseconds per iteration) if
/// `KIMBAP_BENCH_JSON` is set.
pub fn record_micro(bench: &str, case: &str, ns_per_iter: f64) {
    if let Ok(path) = std::env::var(ENV_JSON) {
        record_micro_to(&path, bench, case, ns_per_iter);
    }
}

/// Records one storage-footprint measurement if `KIMBAP_BENCH_JSON` is
/// set.
pub fn record_size(bench: &str, case: &str, system: &str, r: &SizeRecord) {
    if let Ok(path) = std::env::var(ENV_JSON) {
        record_size_to(&path, bench, case, system, r);
    }
}

/// Records a per-round activity trace for one measured case if
/// `KIMBAP_BENCH_JSON` is set.
pub fn record_rounds(bench: &str, case: &str, system: &str, hosts: usize, rounds: &[RoundRecord]) {
    if let Ok(path) = std::env::var(ENV_JSON) {
        record_rounds_to(&path, bench, case, system, hosts, rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_one_json_object_per_line() {
        let path = std::env::temp_dir().join(format!(
            "kimbap-bench-json-test-{}.jsonl",
            std::process::id()
        ));
        let path_s = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);

        let stats = RunStats {
            secs: 1.5,
            comm_secs: 0.25,
            messages: 42,
            bytes: 1024,
            retransmits: 3,
            crc_rejects: 1,
            membership_changes: 1,
            degraded_rounds: 5,
            resharded_keys: 128,
            joins: 1,
            grow_resharded_keys: 64,
            reduce_sync_secs: 0.125,
            overlap_secs: 0.0625,
            chunks_sent: 96,
            chunk_retransmits: 2,
            cache_hits: 7,
            cache_misses: 3,
            cache_evictions: 1,
            graph_bytes: 4096,
            max_host_graph_bytes: 1536,
            peak_rss_bytes: 65536,
            ..RunStats::default()
        };
        record_run_to(path_s, "fig11", "road/cc_sv", "sgr_cf_gar", 4, &stats);
        record_micro_to(path_s, "micro_npm", "reduce_compute/\"quoted\"", 3524165.0);
        record_size_to(
            path_s,
            "max_graph_size",
            "social_unit",
            "compressed",
            &SizeRecord {
                hosts: 1,
                num_edges: 1000,
                graph_bytes: 3210,
                max_host_graph_bytes: 3210,
                peak_rss_bytes: 131072,
            },
        );
        record_rounds_to(
            path_s,
            "frontier_cclp",
            "social/CC-LP",
            "sparse",
            2,
            &[
                RoundRecord {
                    round: 1,
                    active: 512,
                    total: 512,
                    sparse: false,
                    reduce_compute_secs: 0.25,
                },
                RoundRecord {
                    round: 2,
                    active: 37,
                    total: 512,
                    sparse: true,
                    reduce_compute_secs: 0.0625,
                },
            ],
        );

        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"bench\":\"fig11\""));
        assert!(lines[0].contains("\"hosts\":4"));
        assert!(lines[0].contains("\"messages\":42"));
        assert!(lines[0].contains("\"retransmits\":3,\"crc_rejects\":1"));
        assert!(lines[0].contains("\"heartbeat_suspicions\":0,\"timeout_aborts\":0"));
        assert!(lines[0]
            .contains("\"membership_changes\":1,\"degraded_rounds\":5,\"resharded_keys\":128"));
        assert!(lines[0].contains("\"joins\":1,\"grow_resharded_keys\":64"));
        assert!(lines[0].contains("\"reduce_sync_secs\":0.125000"));
        assert!(lines[0]
            .contains("\"overlap_secs\":0.062500,\"chunks_sent\":96,\"chunk_retransmits\":2"));
        assert!(lines[0].contains("\"cache_hits\":7,\"cache_misses\":3,\"cache_evictions\":1"));
        assert!(lines[0].contains(
            "\"graph_bytes\":4096,\"max_host_graph_bytes\":1536,\"peak_rss_bytes\":65536"
        ));
        assert!(lines[1].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"ns_per_iter\":3524165.0"));
        assert!(lines[2].starts_with("{\"bench\":\"max_graph_size\""));
        assert!(lines[2].contains("\"num_edges\":1000,\"graph_bytes\":3210"));
        assert!(lines[2].contains("\"bytes_per_edge\":3.210"));
        assert!(lines[3].starts_with("{\"bench\":\"frontier_cclp\""));
        assert!(lines[3].contains("\"rounds\":[{\"round\":1,"));
        assert!(lines[3].contains("\"active\":37,\"total\":512,\"sparse\":true"));
        std::fs::remove_file(&path).unwrap();
    }
}
