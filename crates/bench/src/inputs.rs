//! Input-graph catalog: laptop-scale analogs of the paper's Table 1.

use kimbap_graph::{gen, Graph};

/// The four evaluation inputs, generated at the configured scale.
///
/// | paper input | shape | analog here |
/// |---|---|---|
/// | road-europe | high diameter, max degree 16 | 2-D grid |
/// | friendster | power law, 3M max degree | R-MAT, edge factor ~16 |
/// | clueweb12 | power law, denser | larger R-MAT |
/// | wdc12 | largest, extreme hubs | largest R-MAT, skewed quadrants |
#[derive(Debug)]
pub struct Inputs;

fn scale() -> &'static str {
    match std::env::var("KIMBAP_SCALE").as_deref() {
        Ok("tiny") => "tiny",
        Ok("medium") => "medium",
        _ => "small",
    }
}

/// Worker threads per simulated host (`KIMBAP_THREADS`, default 2).
pub fn threads_per_host() -> usize {
    std::env::var("KIMBAP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(2)
}

impl Inputs {
    /// The road-network analog (medium size class).
    pub fn road() -> Graph {
        match scale() {
            "tiny" => gen::grid_road(60, 60, 42),
            "medium" => gen::grid_road(450, 450, 42),
            _ => gen::grid_road(220, 220, 42),
        }
    }

    /// The social-network analog (medium size class, power law).
    pub fn social() -> Graph {
        match scale() {
            "tiny" => gen::rmat(11, 8, 42),
            "medium" => gen::rmat(15, 16, 42),
            _ => gen::rmat(13, 16, 42),
        }
    }

    /// The web-crawl analog (large size class).
    pub fn web() -> Graph {
        match scale() {
            "tiny" => gen::rmat(12, 12, 43),
            "medium" => gen::rmat(16, 20, 43),
            _ => gen::rmat(14, 20, 43),
        }
    }

    /// The hyperlink-graph analog (largest input, most extreme hubs).
    pub fn hyperlink() -> Graph {
        let p = gen::RmatParams {
            a: 0.65,
            b: 0.15,
            c: 0.15,
        };
        match scale() {
            "tiny" => gen::rmat_with(12, 10, 44, p),
            "medium" => gen::rmat_with(17, 16, 44, p),
            _ => gen::rmat_with(15, 16, 44, p),
        }
    }

    /// Weighted variant for spanning-forest workloads.
    pub fn weighted(g: &Graph) -> Graph {
        gen::with_random_weights(g, 100_000, 7)
    }

    /// Host counts for the medium-size strong-scaling sweeps (the paper's
    /// 1–16; scaled to the simulator).
    pub fn medium_hosts() -> Vec<usize> {
        hosts_env("KIMBAP_HOSTS_MEDIUM", &[1, 2, 4])
    }

    /// Host counts for the large-size sweeps (the paper's 32–256).
    pub fn large_hosts() -> Vec<usize> {
        hosts_env("KIMBAP_HOSTS_LARGE", &[4, 8])
    }
}

fn hosts_env(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&h| h > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shapes() {
        let road = Inputs::road();
        assert!(road.max_degree() <= 4, "road analog must be low degree");
        let social = Inputs::social();
        let avg = social.num_edges() / social.num_nodes().max(1);
        assert!(
            social.max_degree() > 4 * avg,
            "social analog must have hubs"
        );
    }

    #[test]
    fn hosts_parse() {
        assert_eq!(hosts_env("KIMBAP_NO_SUCH_VAR", &[1, 2]), vec![1, 2]);
    }
}
