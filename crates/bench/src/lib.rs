//! Shared infrastructure for the paper-reproduction benchmarks.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure
//! of the paper's evaluation (§6), printing the same rows/series the paper
//! reports. Absolute numbers differ (the substrate is a simulated cluster,
//! not Stampede2); the *shapes* — who wins, by roughly what factor, where
//! crossovers fall — are the reproduction targets, recorded in
//! `EXPERIMENTS.md`.
//!
//! Knobs (environment variables):
//!
//! * `KIMBAP_SCALE` — `tiny` | `small` (default) | `medium`: input sizes.
//! * `KIMBAP_THREADS` — worker threads per simulated host (default 2).
//! * `KIMBAP_SKIP_MC` — set to skip the (deliberately slow) memcached
//!   variant in Fig. 11.

pub mod harness;
pub mod inputs;
pub mod json;

pub use harness::{peak_rss_bytes, print_row, print_title, run_timed, RunStats};
pub use inputs::{threads_per_host, Inputs};
