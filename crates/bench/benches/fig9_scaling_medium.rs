//! Figure 9: strong scaling on the medium-size graphs (paper: 1–16 hosts).
//!
//! Five panels: (a) LV — Kimbap vs Vite; (b) LD; (c) CC — Gluon-LP vs
//! Kimbap LP/SCLP/SV; (d) MSF; (e) MIS. Expected shapes: Kimbap-LV beats
//! Vite; CC-SCLP/SV beat CC-LP on the road graph and lose on the power-law
//! graph; all Kimbap applications scale with host count.

use kimbap_algos as algos;
use kimbap_algos::{LouvainConfig, NpmBuilder};
use kimbap_baselines::{gluon, vite};
use kimbap_bench::{print_row, print_title, run_timed, threads_per_host, Inputs};
use kimbap_dist::{partition, Policy};
use kimbap_graph::Graph;

fn bench_graph(name: &str, g: &Graph, weighted: &Graph, hosts_list: &[usize]) {
    let threads = threads_per_host();
    let b = NpmBuilder::default();
    let cfg = LouvainConfig::default();
    let vcfg = vite::ViteConfig::default();

    for &hosts in hosts_list {
        let ec = partition(g, Policy::EdgeCutBlocked, hosts);
        let cvc = partition(g, Policy::CartesianVertexCut, hosts);
        let cvc_w = partition(weighted, Policy::CartesianVertexCut, hosts);

        // (a) LV: Kimbap vs Vite (both on the edge-cut, like the paper).
        let (_, s) = run_timed(&ec, threads, |dg, ctx| algos::louvain(dg, ctx, &b, &cfg));
        print_row(&[name.into(), "LV/kimbap".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&ec, threads, |dg, ctx| vite::louvain(dg, ctx, &vcfg));
        print_row(&[name.into(), "LV/vite".into(), hosts.to_string(), fmt(s.secs)]);

        // (b) LD.
        let (_, s) = run_timed(&ec, threads, |dg, ctx| algos::leiden(dg, ctx, &b, &cfg));
        print_row(&[name.into(), "LD/kimbap".into(), hosts.to_string(), fmt(s.secs)]);

        // (c) CC: four systems on the Cartesian vertex-cut.
        let (_, s) = run_timed(&cvc, threads, gluon::cc_lp);
        print_row(&[name.into(), "CC/gluon-lp".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::cc::cc_lp(dg, ctx, &b));
        print_row(&[name.into(), "CC/kimbap-lp".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::cc::cc_sclp(dg, ctx, &b));
        print_row(&[name.into(), "CC/kimbap-sclp".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::cc::cc_sv(dg, ctx, &b));
        print_row(&[name.into(), "CC/kimbap-sv".into(), hosts.to_string(), fmt(s.secs)]);

        // (d) MSF on the weighted graph.
        let (_, s) = run_timed(&cvc_w, threads, |dg, ctx| algos::msf(dg, ctx, &b));
        print_row(&[name.into(), "MSF/kimbap".into(), hosts.to_string(), fmt(s.secs)]);

        // (e) MIS.
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::mis(dg, ctx, &b));
        print_row(&[name.into(), "MIS/kimbap".into(), hosts.to_string(), fmt(s.secs)]);
    }
}

/// Wall-clock strong scaling needs real cores; warn when the simulated
/// cluster is time-sliced onto fewer.
fn warn_if_serialized() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!(
            "note: only {cores} CPU core(s) available — simulated hosts time-slice,\n\
             so wall-clock times will NOT drop as hosts increase; compare systems\n\
             within a host count instead."
        );
    }
}

fn fmt(secs: f64) -> String {
    format!("{secs:.3}s")
}

fn main() {
    warn_if_serialized();
    let hosts = Inputs::medium_hosts();
    print_title(
        "Figure 9: strong scaling, medium graphs",
        &format!(
            "hosts {hosts:?} x {} threads each (override: KIMBAP_HOSTS_MEDIUM, KIMBAP_THREADS)",
            threads_per_host()
        ),
    );
    print_row(&[
        "graph".into(),
        "app/system".into(),
        "hosts".into(),
        "time".into(),
    ]);
    let road = Inputs::road();
    bench_graph("road", &road, &road, &hosts); // grid is already weighted
    let social = Inputs::social();
    let social_w = Inputs::weighted(&social);
    bench_graph("social", &social, &social_w, &hosts);
    println!(
        "\nexpected shapes: LV/kimbap < LV/vite; on road, CC sclp/sv << lp;\n\
         on social, CC lp wins; kimbap-lp ~ gluon-lp."
    );
}
