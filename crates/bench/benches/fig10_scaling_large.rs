//! Figure 10: strong scaling on the large-size graphs (paper: 32–256
//! hosts on clueweb12 and wdc12; Vite timed out there).
//!
//! Same five panels as Fig. 9, on the larger power-law analogs with more
//! hosts. The headline: Kimbap keeps scaling where the hand-optimized
//! baseline no longer finishes.

use kimbap_algos as algos;
use kimbap_algos::{LouvainConfig, NpmBuilder};
use kimbap_bench::{print_row, print_title, run_timed, threads_per_host, Inputs};
use kimbap_dist::{partition, Policy};
use kimbap_graph::Graph;

/// Wall-clock strong scaling needs real cores; warn when the simulated
/// cluster is time-sliced onto fewer.
fn warn_if_serialized() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!(
            "note: only {cores} CPU core(s) available — simulated hosts time-slice,\n\
             so wall-clock times will NOT drop as hosts increase; compare systems\n\
             within a host count instead."
        );
    }
}

fn fmt(secs: f64) -> String {
    format!("{secs:.3}s")
}

fn bench_graph(name: &str, g: &Graph, hosts_list: &[usize], run_ld: bool) {
    let threads = threads_per_host();
    let b = NpmBuilder::default();
    let cfg = LouvainConfig::default();
    let weighted = Inputs::weighted(g);

    for &hosts in hosts_list {
        let ec = partition(g, Policy::EdgeCutBlocked, hosts);
        let cvc = partition(g, Policy::CartesianVertexCut, hosts);
        let cvc_w = partition(&weighted, Policy::CartesianVertexCut, hosts);

        let (_, s) = run_timed(&ec, threads, |dg, ctx| algos::louvain(dg, ctx, &b, &cfg));
        print_row(&[name.into(), "LV/kimbap".into(), hosts.to_string(), fmt(s.secs)]);
        if run_ld {
            // The paper's LD runs out of memory on wdc12 — we keep it to
            // clueweb12's analog as well.
            let (_, s) = run_timed(&ec, threads, |dg, ctx| algos::leiden(dg, ctx, &b, &cfg));
            print_row(&[name.into(), "LD/kimbap".into(), hosts.to_string(), fmt(s.secs)]);
        }
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::cc::cc_lp(dg, ctx, &b));
        print_row(&[name.into(), "CC/kimbap-lp".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::cc::cc_sclp(dg, ctx, &b));
        print_row(&[name.into(), "CC/kimbap-sclp".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::cc::cc_sv(dg, ctx, &b));
        print_row(&[name.into(), "CC/kimbap-sv".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc_w, threads, |dg, ctx| algos::msf(dg, ctx, &b));
        print_row(&[name.into(), "MSF/kimbap".into(), hosts.to_string(), fmt(s.secs)]);
        let (_, s) = run_timed(&cvc, threads, |dg, ctx| algos::mis(dg, ctx, &b));
        print_row(&[name.into(), "MIS/kimbap".into(), hosts.to_string(), fmt(s.secs)]);
    }
}

fn main() {
    warn_if_serialized();
    let hosts = Inputs::large_hosts();
    print_title(
        "Figure 10: strong scaling, large graphs",
        &format!(
            "hosts {hosts:?} x {} threads each (override: KIMBAP_HOSTS_LARGE); \
             Vite omitted — it times out on the paper's large inputs",
            threads_per_host()
        ),
    );
    print_row(&[
        "graph".into(),
        "app/system".into(),
        "hosts".into(),
        "time".into(),
    ]);
    bench_graph("web", &Inputs::web(), &hosts, true);
    bench_graph("hyperlink", &Inputs::hyperlink(), &hosts, false);
    println!("\nexpected shape: CC-LP remains the fastest CC on power-law inputs.");
}
