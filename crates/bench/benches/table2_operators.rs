//! Table 2: operator types used in each application, derived by running
//! the Kimbap compiler's classifier over the applications' IR programs.
//!
//! Paper: LV ••, LD ••, MSF (trans only), CC-LP (adjacent only),
//! CC-SCLP ••, CC-SV (trans only), MIS (adjacent only).

use kimbap_bench::{print_row, print_title};
use kimbap_compiler::{classify_program, programs};

fn main() {
    print_title(
        "Table 2: operator types used in each application",
        "classified by the compiler from the programs' property-access keys",
    );
    print_row(&[
        "application".into(),
        "operators".into(),
        "adj".into(),
        "trans".into(),
    ]);
    let apps = [
        ("LV", programs::louvain_sketch()),
        ("LD", programs::leiden_sketch()),
        ("MSF", programs::msf_sketch()),
        ("CC-LP", programs::cc_lp()),
        ("CC-SCLP", programs::cc_sclp()),
        ("CC-SV", programs::cc_sv()),
        ("MIS", programs::mis()),
    ];
    let expected = [
        (true, true),
        (true, true),
        (false, true),
        (true, false),
        (true, true),
        (false, true),
        (true, false),
    ];
    for ((name, prog), (e_adj, e_trans)) in apps.into_iter().zip(expected) {
        let c = classify_program(&prog);
        let mark = |b: bool| if b { "*" } else { "" };
        print_row(&[
            name.into(),
            c.num_operators.to_string(),
            mark(c.uses_adjacent).into(),
            mark(c.uses_trans).into(),
        ]);
        assert_eq!(
            (c.uses_adjacent, c.uses_trans),
            (e_adj, e_trans),
            "{name} classification diverges from the paper's Table 2"
        );
    }
    println!("\nall seven rows match the paper's Table 2.");
}
