//! max_graph_size: the storage-capacity experiment behind ROADMAP item 3.
//!
//! Measures what the compressed tier buys in bytes — and what it costs in
//! seconds — on the Table 1 input analogs:
//!
//! 1. Whole-graph footprint, raw vs compressed, per input (the headline
//!    bytes-per-edge numbers; unit-weight social must land under 4 B/edge,
//!    ≥ 2.5x below raw — ci.sh asserts this via `kimbap stats`).
//! 2. A capacity ladder: unit-weight R-MAT at growing scales, with process
//!    peak RSS, showing how much further the same memory goes.
//! 3. Hub splitting on the 4-host social/LV partition (EdgeCutBlocked, the
//!    policy LV runs): max-per-host bytes with and without splitting the
//!    power-law hubs' edge lists.
//! 4. Runtime parity: CC-LP over raw vs compressed partitions, so the
//!    footprint win is shown not to cost wall-clock.

use kimbap_algos::{cc, NpmBuilder};
use kimbap_bench::{
    json, peak_rss_bytes, print_row, print_title, run_timed, threads_per_host, Inputs,
};
use kimbap_dist::{partition_cfg, PartitionCfg, Policy};
use kimbap_graph::{gen, Graph, GraphStats};

fn smoke() -> bool {
    std::env::var("KIMBAP_BENCH_SMOKE").is_ok()
}

fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1}KiB", b as f64 / 1024.0)
    }
}

/// One whole-graph row: raw and compressed side by side.
fn size_case(case: &str, g: &Graph) {
    let raw = GraphStats::of(g);
    let comp = GraphStats::of(&g.compress());
    for (system, s) in [("raw", &raw), ("compressed", &comp)] {
        print_row(&[
            case.into(),
            system.into(),
            "1".into(),
            fmt_bytes(s.size_bytes as u64),
            format!("{:.2}", s.bytes_per_edge()),
            format!("{:.2}x", raw.size_bytes as f64 / s.size_bytes as f64),
        ]);
        json::record_size(
            "max_graph_size",
            case,
            system,
            &json::SizeRecord {
                hosts: 1,
                num_edges: g.num_edges() as u64,
                graph_bytes: s.size_bytes as u64,
                max_host_graph_bytes: s.size_bytes as u64,
                peak_rss_bytes: peak_rss_bytes(),
            },
        );
    }
}

/// The 4-host social/LV partition with and without hub splitting: the
/// interesting number is the *max* per-host bytes a power-law hub pins.
fn hub_split_case(g: &Graph, hosts: usize) {
    let avg_deg = g.num_edges() / g.num_nodes().max(1);
    for (system, threshold) in [("no_hub", None), ("hub_split", Some(4 * avg_deg))] {
        let parts = partition_cfg(
            g,
            &PartitionCfg {
                policy: Policy::EdgeCutBlocked,
                hosts,
                compressed: true,
                hub_degree_threshold: threshold,
            },
        );
        let per_host: Vec<u64> = parts.iter().map(|p| p.size_bytes() as u64).collect();
        let total: u64 = per_host.iter().sum();
        let max = per_host.iter().copied().max().unwrap_or(0);
        print_row(&[
            "social/LV".into(),
            system.into(),
            hosts.to_string(),
            fmt_bytes(total),
            fmt_bytes(max),
            format!("{:.2}", max as f64 / (total / hosts as u64).max(1) as f64),
        ]);
        json::record_size(
            "max_graph_size",
            "social/LV_partition",
            system,
            &json::SizeRecord {
                hosts,
                num_edges: g.num_edges() as u64,
                graph_bytes: total,
                max_host_graph_bytes: max,
                peak_rss_bytes: peak_rss_bytes(),
            },
        );
    }
}

/// CC-LP on raw vs compressed partitions: same labels, same ballpark
/// seconds, a fraction of the bytes.
fn runtime_parity(g: &Graph, hosts: usize) {
    let threads = threads_per_host();
    let b = NpmBuilder::default();
    let mut labels: Vec<Vec<u64>> = Vec::new();
    for compressed in [false, true] {
        let parts = partition_cfg(
            g,
            &PartitionCfg {
                policy: Policy::CartesianVertexCut,
                hosts,
                compressed,
                hub_degree_threshold: None,
            },
        );
        let (outs, s) = run_timed(&parts, threads, |dg, ctx| cc::cc_lp(dg, ctx, &b));
        labels.push(kimbap_algos::merge_master_values(g.num_nodes(), outs));
        let system = if compressed { "compressed" } else { "raw" };
        print_row(&[
            "social/CC-LP".into(),
            system.into(),
            hosts.to_string(),
            fmt_bytes(s.graph_bytes),
            format!("{:.3}s", s.secs),
            fmt_bytes(s.peak_rss_bytes),
        ]);
        json::record("max_graph_size", "runtime/social_cc_lp", system, hosts, &s);
    }
    assert_eq!(labels[0], labels[1], "compressed labels diverged from raw");
}

fn main() {
    print_title(
        "max_graph_size: compressed-tier capacity (bytes/edge, hub splitting)",
        "unit-weight inputs store no weight array at all on the compressed tier",
    );
    print_row(&[
        "case".into(),
        "system".into(),
        "hosts".into(),
        "bytes".into(),
        "B/edge|max-host".into(),
        "ratio".into(),
    ]);

    let social_unit = gen::with_unit_weights(&Inputs::social());
    size_case("social_unit", &social_unit);
    if smoke() {
        hub_split_case(&social_unit, 4);
        runtime_parity(&social_unit, 2);
        return;
    }
    size_case("road", &gen::with_unit_weights(&Inputs::road()));
    size_case("social_weighted", &Inputs::weighted(&Inputs::social()));
    size_case("web", &gen::with_unit_weights(&Inputs::web()));
    size_case("hyperlink", &gen::with_unit_weights(&Inputs::hyperlink()));

    // Capacity ladder: how far the same memory stretches. Scales chosen to
    // stay laptop-friendly; KIMBAP_SCALE=medium pushes one notch further.
    let max_scale = match std::env::var("KIMBAP_SCALE").as_deref() {
        Ok("tiny") => 12,
        Ok("medium") => 17,
        _ => 15,
    };
    for scale in (11..=max_scale).step_by(2) {
        let g = gen::with_unit_weights(&gen::rmat(scale, 16, 42));
        size_case(&format!("rmat_s{scale}"), &g);
    }

    hub_split_case(&social_unit, 4);
    runtime_parity(&social_unit, 4);
}
