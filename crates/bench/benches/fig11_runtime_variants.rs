//! Figure 11: the runtime ablation — Vite, MC (memcached), SGR-only,
//! SGR+CF, SGR+CF+GAR — for LV and CC-SV on the medium graphs, with the
//! computation/communication breakdown.
//!
//! Expected shapes (§6.4): MC slowest by far (per-key string ops + CAS
//! retries); SGR-only beats MC ~an order of magnitude; CF pays off most on
//! power-law/hub-heavy reductions; GAR adds ~another factor by keeping
//! master reads local; Vite lands between MC and SGR-only (single-threaded
//! inspection).

use kimbap_algos as algos;
use kimbap_algos::{LouvainConfig, NpmBuilder};
use kimbap_baselines::{mckv::McBuilder, vite};
use kimbap_bench::{json, print_row, print_title, run_timed, threads_per_host, Inputs};
use kimbap_dist::{partition_cfg, PartitionCfg, Policy};
use kimbap_graph::Graph;
use kimbap_npm::Variant;

fn fmt(secs: f64) -> String {
    format!("{secs:.3}s")
}

fn skip_mc() -> bool {
    std::env::var("KIMBAP_SKIP_MC").is_ok()
}

/// Smoke mode (`KIMBAP_BENCH_SMOKE`): one tiny graph, one app, one host
/// count — just enough to prove the bench runs and emits JSON records.
fn smoke() -> bool {
    std::env::var("KIMBAP_BENCH_SMOKE").is_ok()
}

fn bench(name: &str, app: &str, g: &Graph, hosts: usize) {
    let threads = threads_per_host();
    let cfg = LouvainConfig::default();
    // Compressed local CSRs, like the CLI's read-only default: the records'
    // graph_bytes show the footprint win and secs must hold the runtime.
    // KIMBAP_BENCH_RAW keeps the raw arrays for an apples-to-apples
    // storage-tier comparison on the same machine.
    let ec = partition_cfg(
        g,
        &PartitionCfg {
            policy: Policy::EdgeCutBlocked,
            hosts,
            compressed: std::env::var("KIMBAP_BENCH_RAW").is_err(),
            hub_degree_threshold: None,
        },
    );

    let row = |system: &str, secs: f64, comp: f64, comm: f64, overlapped: bool| {
        let (c1, c2) = if overlapped {
            ("(overlap)".to_string(), "(overlap)".to_string())
        } else {
            (fmt(comp), fmt(comm))
        };
        print_row(&[
            app.into(),
            name.into(),
            system.into(),
            hosts.to_string(),
            fmt(secs),
            c1,
            c2,
        ]);
    };

    let case = format!("{name}/{app}");

    // Vite (LV only; it is a Louvain implementation).
    if app == "LV" {
        let vcfg = vite::ViteConfig::default();
        let (_, s) = run_timed(&ec, threads, |dg, ctx| vite::louvain(dg, ctx, &vcfg));
        row("vite", s.secs, 0.0, 0.0, true);
        json::record("fig11_runtime_variants", &case, "vite", hosts, &s);
    }

    // MC.
    if !skip_mc() {
        let mc = McBuilder::new(hosts);
        let (_, s) = run_timed(&ec, threads, |dg, ctx| match app {
            "LV" => {
                algos::louvain(dg, ctx, &mc, &cfg);
            }
            _ => {
                algos::cc::cc_sv(dg, ctx, &mc);
            }
        });
        row("MC", s.secs, 0.0, 0.0, true);
        json::record("fig11_runtime_variants", &case, "mc", hosts, &s);
    }

    // The three Kimbap runtime variants.
    for (label, system, variant) in [
        ("SGR-only", "sgr_only", Variant::SgrOnly),
        ("SGR+CF", "sgr_cf", Variant::SgrCf),
        ("SGR+CF+GAR", "sgr_cf_gar", Variant::SgrCfGar),
    ] {
        let b = NpmBuilder::new(variant);
        let (_, s) = run_timed(&ec, threads, |dg, ctx| match app {
            "LV" => {
                algos::louvain(dg, ctx, &b, &cfg);
            }
            _ => {
                algos::cc::cc_sv(dg, ctx, &b);
            }
        });
        row(label, s.secs, s.comp_secs(), s.comm_secs, false);
        json::record("fig11_runtime_variants", &case, system, hosts, &s);
    }

    // Pipelining ablation on the flagship variant: the identical workload
    // with split-phase reduce-sync disabled (the CLI's --no-pipeline).
    // Diffing this record against sgr_cf_gar above isolates the overlap
    // win; the pipelined record's overlap_secs says how much wire time
    // ran under compute.
    let b = NpmBuilder::new(Variant::SgrCfGar);
    let (_, s) = run_timed(&ec, threads, |dg, ctx| {
        ctx.set_pipelined(false);
        match app {
            "LV" => {
                algos::louvain(dg, ctx, &b, &cfg);
            }
            _ => {
                algos::cc::cc_sv(dg, ctx, &b);
            }
        }
    });
    row("GAR/serial", s.secs, s.comp_secs(), s.comm_secs, false);
    json::record("fig11_runtime_variants", &case, "sgr_cf_gar_nopipe", hosts, &s);
}

fn main() {
    let hosts_list = Inputs::medium_hosts();
    print_title(
        "Figure 11: runtime variants (comp/comm breakdown)",
        "MC and Vite overlap computation with communication (single bar), like the paper",
    );
    print_row(&[
        "app".into(),
        "graph".into(),
        "system".into(),
        "hosts".into(),
        "total".into(),
        "comp".into(),
        "comm".into(),
    ]);
    let road = Inputs::road();
    if smoke() {
        // CI smoke: prove the harness runs end to end and emits records.
        bench("road", "CC-SV", &road, hosts_list.iter().copied().find(|&h| h >= 2).unwrap_or(2));
        return;
    }
    let social = Inputs::social();
    for &hosts in &hosts_list {
        if hosts < 2 {
            continue; // variants differ only with real distribution
        }
        bench("road", "LV", &road, hosts);
        bench("social", "LV", &social, hosts);
        bench("road", "CC-SV", &road, hosts);
        bench("social", "CC-SV", &social, hosts);
    }
    println!(
        "\nexpected order per group: MC >> vite > SGR-only > SGR+CF > SGR+CF+GAR\n\
         (set KIMBAP_SKIP_MC to skip the slowest bars)"
    );
}
