//! §4.2's motivating measurement: the fraction of node-property reads that
//! hit *master* properties.
//!
//! Paper: 65% of reads are master reads on 4 hosts, 50% on 32 hosts — far
//! above the ~3% of nodes that are masters per host — which is the
//! locality GAR exploits by keeping master properties in a dense local
//! vector.
//!
//! This bench replays the CC-SV access pattern (the paper's running
//! example) while keeping handles to the maps, then reports the read mix.

use kimbap_algos::refcheck;
use kimbap_bench::{print_row, print_title, threads_per_host, Inputs};
use kimbap_comm::Cluster;
use kimbap_dist::{partition, Policy};
use kimbap_graph::{Graph, NodeId};
use kimbap_npm::{Min, NodePropMap, Npm, NpmReadStats};

/// CC-SV with instrumented maps: returns per-host read stats and labels.
fn cc_sv_instrumented(g: &Graph, hosts: usize) -> (Vec<NpmReadStats>, Vec<u64>) {
    let parts = partition(g, Policy::CartesianVertexCut, hosts);
    let out = Cluster::with_threads(hosts, threads_per_host()).run(|ctx| {
        let dg = &parts[ctx.host()];
        let mut parent: Npm<u64, Min> = Npm::new(dg, ctx, Min);
        parent.enable_read_stats();
        parent.init_masters(&|g| g as u64);
        let work_done = kimbap_npm::BoolReducer::new();
        loop {
            work_done.set(false);
            // Hook.
            parent.pin_mirrors(ctx);
            loop {
                parent.reset_updated();
                let p = &parent;
                ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                    for lid in range {
                        let lid = lid as u32;
                        if dg.degree(lid) == 0 {
                            continue;
                        }
                        let sp = p.read(dg.local_to_global(lid));
                        for (dst, _) in dg.edges(lid) {
                            let dp = p.read(dg.local_to_global(dst));
                            if sp > dp {
                                work_done.reduce(true);
                                p.reduce(tid, sp as NodeId, dp);
                            }
                        }
                    }
                });
                parent.reduce_sync(ctx);
                parent.broadcast_sync(ctx);
                if !parent.is_updated(ctx) {
                    break;
                }
            }
            parent.unpin_mirrors();
            // Shortcut.
            loop {
                parent.reset_updated();
                let p = &parent;
                ctx.par_for(0..dg.num_masters(), |_t, range| {
                    for m in range {
                        let g = dg.local_to_global(m as u32);
                        p.request(p.read(g) as NodeId);
                    }
                });
                parent.request_sync(ctx);
                let p = &parent;
                ctx.par_for(0..dg.num_masters(), |tid, range| {
                    for m in range {
                        let g = dg.local_to_global(m as u32);
                        let par = p.read(g);
                        let grand = p.read(par as NodeId);
                        if par != grand {
                            p.reduce(tid, g, grand);
                        }
                    }
                });
                parent.reduce_sync(ctx);
                if !parent.is_updated(ctx) {
                    break;
                }
            }
            if !work_done.read(ctx) {
                break;
            }
        }
        let labels: Vec<(NodeId, u64)> = dg
            .master_nodes()
            .map(|m| {
                let g = dg.local_to_global(m);
                (g, parent.read(g))
            })
            .collect();
        (parent.read_stats(), labels)
    });
    let mut stats = Vec::new();
    let mut labels = vec![0u64; g.num_nodes()];
    for (s, host_labels) in out {
        stats.push(s);
        for (g, v) in host_labels {
            labels[g as usize] = v;
        }
    }
    (stats, labels)
}

fn main() {
    print_title(
        "Read locality (§4.2): master vs remote property reads, CC-SV",
        "paper: 65% master reads on 4 hosts, 50% on 32 — GAR's motivation",
    );
    print_row(&[
        "graph".into(),
        "hosts".into(),
        "master%".into(),
        "masters/host%".into(),
    ]);
    for (name, g) in [("road", Inputs::road()), ("social", Inputs::social())] {
        let expected = refcheck::connected_components(&g);
        for hosts in [2, 4] {
            let (stats, labels) = cc_sv_instrumented(&g, hosts);
            assert_eq!(labels, expected, "instrumented CC-SV must stay correct");
            let master: u64 = stats.iter().map(|s| s.master_reads).sum();
            let remote: u64 = stats.iter().map(|s| s.remote_reads).sum();
            let pct = 100.0 * master as f64 / (master + remote).max(1) as f64;
            print_row(&[
                name.into(),
                hosts.to_string(),
                format!("{pct:.1}%"),
                format!("{:.1}%", 100.0 / hosts as f64),
            ]);
        }
    }
    println!(
        "\nexpected shape: master-read share far exceeds the per-host master\n\
         fraction, and decreases as hosts increase."
    );
}
