//! Table 1: input graphs and their statistics.
//!
//! Paper: road-europe (173M/365M, max deg 16), friendster (41M/2B, max deg
//! 3M), clueweb12 (978M/85B), wdc12 (3B/256B, max deg 95B). Reproduced
//! here as synthetic analogs with the same *shape* (diameter class and
//! degree skew) at laptop scale.

use kimbap_bench::{print_row, print_title, Inputs};
use kimbap_graph::GraphStats;

fn main() {
    print_title(
        "Table 1: input graphs and their statistics (synthetic analogs)",
        "road = grid (high diameter, uniform small degree); others = R-MAT (power law)",
    );
    print_row(&[
        "graph".into(),
        "analog of".into(),
        "|V|".into(),
        "|E|".into(),
        "|E|/|V|".into(),
        "max-deg".into(),
        "size(MB)".into(),
    ]);
    for (name, paper, g) in [
        ("road", "road-europe", Inputs::road()),
        ("social", "friendster", Inputs::social()),
        ("web", "clueweb12", Inputs::web()),
        ("hyperlink", "wdc12", Inputs::hyperlink()),
    ] {
        let s = GraphStats::of(&g);
        print_row(&[
            name.into(),
            paper.into(),
            s.num_nodes.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.avg_degree()),
            s.max_degree.to_string(),
            format!("{:.1}", s.size_bytes as f64 / 1e6),
        ]);
    }
    println!(
        "\nshape check: road max-deg is tiny and uniform; the R-MAT analogs'\n\
         max degree exceeds their average by orders of magnitude, like the paper's inputs."
    );
}
