//! Figure 12: compiled programs with and without the §5.2 compiler
//! optimizations (master-elision and pinned mirrors), for the two
//! adjacent-vertex programs CC-LP and MIS, with the comp/comm breakdown.
//!
//! Both plans execute on the same engine and runtime; only the generated
//! communication differs. Expected shape: NO-OPT is strictly slower and
//! moves strictly more bytes; the gap grows with rounds and graph size
//! (the paper reports 79× total at cluster scale).

use kimbap::engine::Engine;
use kimbap_bench::{print_row, print_title, run_timed, threads_per_host, Inputs};
use kimbap_compiler::{compile, programs, OptLevel};
use kimbap_dist::{partition, Policy};
use kimbap_graph::Graph;

fn fmt(secs: f64) -> String {
    format!("{secs:.3}s")
}

fn bench(name: &str, app: &str, prog: &kimbap_compiler::ir::Program, g: &Graph, hosts: usize) {
    let threads = threads_per_host();
    let parts = partition(g, Policy::EdgeCutBlocked, hosts);
    let mut measured = Vec::new();
    for (label, opt) in [("OPT", OptLevel::Full), ("NO-OPT", OptLevel::None)] {
        let plan = compile(prog, opt);
        let (outs, s) = run_timed(&parts, threads, |dg, ctx| {
            Engine::new(dg, ctx, &plan).run(ctx).rounds
        });
        print_row(&[
            app.into(),
            name.into(),
            label.into(),
            hosts.to_string(),
            fmt(s.secs),
            fmt(s.comp_secs()),
            fmt(s.comm_secs),
            format!("{}B", s.bytes),
            format!("{}rnd", outs[0]),
        ]);
        measured.push(s.bytes);
    }
    assert!(
        measured[1] >= measured[0],
        "{app}/{name}: NO-OPT must not move fewer bytes than OPT"
    );
}

fn main() {
    let hosts_list = Inputs::medium_hosts();
    print_title(
        "Figure 12: compile-time optimizations ON vs OFF (comp/comm breakdown)",
        "identical programs, identical runtime; only the generated requests/broadcasts differ",
    );
    print_row(&[
        "app".into(),
        "graph".into(),
        "mode".into(),
        "hosts".into(),
        "total".into(),
        "comp".into(),
        "comm".into(),
        "bytes".into(),
        "rounds".into(),
    ]);
    let road = Inputs::road();
    let social = Inputs::social();
    let cc_lp = programs::cc_lp();
    let mis = programs::mis();
    for &hosts in &hosts_list {
        bench("road", "CC-LP", &cc_lp, &road, hosts);
        bench("social", "CC-LP", &cc_lp, &social, hosts);
        bench("road", "MIS", &mis, &road, hosts);
        bench("social", "MIS", &mis, &social, hosts);
    }
    println!("\nexpected shape: NO-OPT strictly more bytes and more time per row.");
}
