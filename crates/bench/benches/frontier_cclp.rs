//! Frontier (active-set) execution: CC-LP dense vs sparse on the fig11
//! rMAT input.
//!
//! Label propagation is the canonical frontier workload: the first rounds
//! touch everything, then activity collapses to the shrinking set of nodes
//! whose neighborhoods still change. Dense execution pays the full
//! `ParFor` every round; the sparse engine iterates only the changed-key
//! frontier. Expected shape: identical results and round counts, with the
//! tail rounds (after round 2) several times cheaper sparse — the gap
//! grows with graph diameter.
//!
//! Each run also records its per-round activity trace (`rounds` array in
//! the JSON record), which is what `EXPERIMENTS.md` and CI read to verify
//! the sparse path actually engaged.

use kimbap::engine::{Engine, EngineConfig, EngineOutput};
use kimbap_bench::{json, print_row, print_title, run_timed, threads_per_host, Inputs};
use kimbap_compiler::{compile, programs, OptLevel};
use kimbap_dist::{partition, Policy};

fn fmt(secs: f64) -> String {
    format!("{secs:.3}s")
}

/// Folds per-host activity into cluster-wide per-round records.
fn merge_rounds(outs: &[EngineOutput]) -> Vec<json::RoundRecord> {
    (0..outs[0].activity.len())
        .map(|i| json::RoundRecord {
            round: outs[0].activity[i].round,
            active: outs.iter().map(|o| o.activity[i].active).sum(),
            total: outs.iter().map(|o| o.activity[i].total).sum(),
            sparse: outs.iter().all(|o| o.activity[i].sparse),
            reduce_compute_secs: outs
                .iter()
                .map(|o| o.activity[i].reduce_compute_nanos)
                .max()
                .unwrap_or(0) as f64
                / 1e9,
        })
        .collect()
}

/// Master labels merged across hosts, for the dense-vs-sparse equality
/// check.
fn merged_labels(outs: &[EngineOutput]) -> Vec<(u64, u64)> {
    let mut all: Vec<(u64, u64)> = outs
        .iter()
        .flat_map(|o| o.map_values[0].iter().map(|&(g, v)| (g as u64, v)))
        .collect();
    all.sort_unstable();
    all
}

fn main() {
    let hosts = Inputs::medium_hosts()
        .iter()
        .copied()
        .find(|&h| h >= 2)
        .unwrap_or(2);
    let threads = threads_per_host();
    let g = Inputs::social();
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let plan = compile(&programs::cc_lp(), OptLevel::Full);

    print_title(
        "Frontier execution: CC-LP dense vs sparse (rMAT social graph)",
        "same plan and runtime; sparse rounds iterate only changed-key readers",
    );
    print_row(&[
        "mode".into(),
        "hosts".into(),
        "rounds".into(),
        "total".into(),
        "reduce-comp".into(),
        "tail-comp".into(),
        "tail-active".into(),
    ]);

    let mut outs_by_mode = Vec::new();
    let mut tail_secs = Vec::new();
    for (label, sparse) in [("dense", false), ("sparse", true)] {
        let cfg = EngineConfig {
            sparse,
            ..EngineConfig::default()
        };
        let (outs, s) = run_timed(&parts, threads, |dg, ctx| {
            Engine::with_config(dg, ctx, &plan, cfg).run(ctx)
        });
        let rounds = merge_rounds(&outs);
        // Tail = rounds after round 2, where a frontier workload has
        // stopped touching most of the graph.
        let tail: Vec<&json::RoundRecord> = rounds.iter().filter(|r| r.round > 2).collect();
        let tail_comp: f64 = tail.iter().map(|r| r.reduce_compute_secs).sum();
        let tail_active: u64 = tail.iter().map(|r| r.active).sum();
        let tail_total: u64 = tail.iter().map(|r| r.total).sum();
        print_row(&[
            label.into(),
            hosts.to_string(),
            outs[0].rounds.to_string(),
            fmt(s.secs),
            fmt(s.reduce_compute_secs),
            fmt(tail_comp),
            format!("{tail_active}/{tail_total}"),
        ]);
        json::record("frontier_cclp", "social/CC-LP", label, hosts, &s);
        json::record_rounds("frontier_cclp", "social/CC-LP", label, hosts, &rounds);

        if sparse {
            // The sparse path must actually engage: every round after the
            // dense pin round is sparse, and past round 2 the frontier is
            // a strict subset of the node space.
            assert!(
                rounds.iter().skip(1).all(|r| r.sparse),
                "sparse run fell back to dense after the pin round"
            );
            assert!(
                rounds.len() > 2,
                "label propagation quiesced too fast to measure a tail"
            );
            for r in &tail {
                assert!(
                    r.active < r.total,
                    "round {}: sparse frontier did not shrink ({}/{})",
                    r.round,
                    r.active,
                    r.total
                );
            }
        }
        outs_by_mode.push(outs);
        tail_secs.push(tail_comp);
    }

    assert_eq!(
        merged_labels(&outs_by_mode[0]),
        merged_labels(&outs_by_mode[1]),
        "sparse execution diverged from dense"
    );
    assert_eq!(outs_by_mode[0][0].rounds, outs_by_mode[1][0].rounds);

    if tail_secs[1] > 0.0 {
        println!(
            "\ntail (rounds >2) reduce-compute speedup: {:.1}x (dense {} vs sparse {})",
            tail_secs[0] / tail_secs[1],
            fmt(tail_secs[0]),
            fmt(tail_secs[1]),
        );
    }
    println!("expected shape: identical labels and rounds; sparse tail several times cheaper.");
}
