//! Serving throughput: a multi-tenant job stream over one resident graph.
//!
//! `kimbap serve` keeps the partitioned graph in memory and multiplexes a
//! queue of analytics jobs onto it; this bench measures the two numbers
//! that regime is about — jobs per second over a mixed stream, and the
//! cache-hit ratio when tenants repeat queries. The stream is three passes
//! over eight distinct `(algorithm, params)` queries, so a correct result
//! cache answers two thirds of the stream without touching a collective.
//!
//! Expected shape: hit ratio ~0.67 on every run, and the cached passes
//! cost microseconds next to the computed first pass — jobs/sec is
//! dominated by the eight real computations.

use kimbap::serve::{Algo, HostServer, JobSpec, JobStatus};
use kimbap_bench::{json, print_row, print_title, run_timed, threads_per_host, Inputs};
use kimbap_dist::{partition, Policy};

const HOSTS: usize = 4;
const PASSES: usize = 3;
const CACHE_CAPACITY: usize = 16;

/// One pass of the distinct queries: every algorithm family the server
/// can run, two parameter tags each.
fn distinct_queries() -> Vec<JobSpec> {
    [Algo::CcLp, Algo::CcSv, Algo::Mis, Algo::Louvain]
        .into_iter()
        .flat_map(|algo| {
            (0..2).map(move |params| JobSpec {
                params,
                ..JobSpec::new(algo)
            })
        })
        .collect()
}

fn main() {
    let threads = threads_per_host();
    let g = Inputs::social();
    let parts = partition(&g, Policy::EdgeCutBlocked, HOSTS);

    let distinct = distinct_queries();
    let jobs: Vec<JobSpec> = std::iter::repeat_n(distinct.clone(), PASSES)
        .flatten()
        .collect();
    // Round-robin the stream across the hosts' admission queues, as a
    // set of independent tenants would.
    let mut queues = vec![Vec::new(); HOSTS];
    for (i, &spec) in jobs.iter().enumerate() {
        queues[i % HOSTS].push(spec);
    }
    let queues = &queues;

    print_title(
        "Serving throughput: mixed job stream over a resident graph",
        "3 passes x 8 distinct (algo, params) queries; repeats must hit the result cache",
    );
    print_row(&[
        "case".into(),
        "hosts".into(),
        "jobs".into(),
        "jobs/s".into(),
        "hit-ratio".into(),
        "total".into(),
    ]);

    let (reports, s) = run_timed(&parts, threads, |dg, ctx| {
        let mut server = HostServer::new(CACHE_CAPACITY);
        server.serve_batch(ctx, dg, &queues[ctx.host()])
    });

    for (h, host_reports) in reports.iter().enumerate() {
        assert_eq!(host_reports.len(), jobs.len(), "host {h} schedule length");
        for (k, r) in host_reports.iter().enumerate() {
            assert!(
                matches!(r.status, JobStatus::Completed { .. }),
                "host {h}: fault-free job {k} did not complete"
            );
        }
    }
    // The whole point of serving from residency: repeats never recompute.
    let expected_hits = (jobs.len() - distinct.len()) as u64 * HOSTS as u64;
    assert!(
        s.cache_hits > 0,
        "a stream with {PASSES} passes over the same queries must hit the cache"
    );
    assert_eq!(
        (s.cache_hits, s.cache_misses),
        (expected_hits, distinct.len() as u64 * HOSTS as u64),
        "every repeat cached, every first sight computed, on every host"
    );

    let jobs_per_sec = jobs.len() as f64 / s.secs.max(1e-9);
    let hit_ratio = s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64;
    print_row(&[
        "social/mixed".into(),
        HOSTS.to_string(),
        jobs.len().to_string(),
        format!("{jobs_per_sec:.1}"),
        format!("{hit_ratio:.2}"),
        format!("{:.3}s", s.secs),
    ]);
    json::record("serve_throughput", "social/mixed", "kimbap", HOSTS, &s);

    println!(
        "\n{} jobs in {:.3}s: {:.1} jobs/s, cache hit ratio {:.2} ({} hits / {} misses / {} evictions)",
        jobs.len(),
        s.secs,
        jobs_per_sec,
        hit_ratio,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
    );
    println!("expected shape: hit ratio ~0.67; cached passes cost ~nothing next to pass one.");
}
