//! Table 3: Galois (shared-memory, 1 host) vs Kimbap on 1 host and on the
//! full cluster, for the medium graphs.
//!
//! Expected shapes (paper §6.3): comparable LV / CC-LP / MIS on one host;
//! Galois wins MSF and CC-SV on one host (asynchronous atomic pointer
//! jumping vs BSP rounds); Kimbap wins LD (no reduction conflicts); the
//! multi-host Kimbap column beats both on the bigger inputs.

use kimbap_algos as algos;
use kimbap_algos::{LouvainConfig, NpmBuilder};
use kimbap_baselines::galois;
use kimbap_bench::{json, print_row, print_title, run_timed, threads_per_host, Inputs, RunStats};
use kimbap_dist::{partition, Policy};
use kimbap_graph::Graph;
use std::time::Instant;

fn fmt(secs: f64) -> String {
    format!("{secs:.3}s")
}

fn galois_time(f: impl FnOnce()) -> String {
    let t = Instant::now();
    f();
    fmt(t.elapsed().as_secs_f64())
}

fn bench_graph(name: &str, g: &Graph, cluster_hosts: usize) {
    let threads = threads_per_host();
    // Galois gets all the machine parallelism one host would have.
    let galois_threads = threads * cluster_hosts;
    let b = NpmBuilder::default();
    let cfg = LouvainConfig::default();
    let weighted = Inputs::weighted(g);

    let one_ec = partition(g, Policy::EdgeCutBlocked, 1);
    let many_ec = partition(g, Policy::EdgeCutBlocked, cluster_hosts);
    let one_cvc = partition(g, Policy::CartesianVertexCut, 1);
    let many_cvc = partition(g, Policy::CartesianVertexCut, cluster_hosts);
    let one_w = partition(&weighted, Policy::CartesianVertexCut, 1);
    let many_w = partition(&weighted, Policy::CartesianVertexCut, cluster_hosts);

    let row = |app: &str, ga: String, k1: &RunStats, kn: &RunStats| {
        print_row(&[
            app.into(),
            name.into(),
            ga,
            fmt(k1.secs),
            fmt(kn.secs),
        ]);
        let case = format!("{name}/{app}");
        json::record("table3_single_host", &case, "kimbap", 1, k1);
        json::record("table3_single_host", &case, "kimbap", cluster_hosts, kn);
    };

    // LV.
    let ga = galois_time(|| {
        galois::louvain(g, galois_threads, 48);
    });
    let (_, k1) = run_timed(&one_ec, threads, |dg, ctx| algos::louvain(dg, ctx, &b, &cfg));
    let (_, kn) = run_timed(&many_ec, threads, |dg, ctx| algos::louvain(dg, ctx, &b, &cfg));
    row("LV", ga, &k1, &kn);

    // LD.
    let ga = galois_time(|| {
        galois::leiden(g, galois_threads, 48);
    });
    let (_, k1) = run_timed(&one_ec, threads, |dg, ctx| algos::leiden(dg, ctx, &b, &cfg));
    let (_, kn) = run_timed(&many_ec, threads, |dg, ctx| algos::leiden(dg, ctx, &b, &cfg));
    row("LD", ga, &k1, &kn);

    // MSF.
    let ga = galois_time(|| {
        galois::msf(&weighted, galois_threads);
    });
    let (_, k1) = run_timed(&one_w, threads, |dg, ctx| algos::msf(dg, ctx, &b));
    let (_, kn) = run_timed(&many_w, threads, |dg, ctx| algos::msf(dg, ctx, &b));
    row("MSF", ga, &k1, &kn);

    // CC-LP.
    let ga = galois_time(|| {
        galois::cc_lp(g, galois_threads);
    });
    let (_, k1) = run_timed(&one_cvc, threads, |dg, ctx| algos::cc::cc_lp(dg, ctx, &b));
    let (_, kn) = run_timed(&many_cvc, threads, |dg, ctx| algos::cc::cc_lp(dg, ctx, &b));
    row("CC-LP", ga, &k1, &kn);

    // CC-SV.
    let ga = galois_time(|| {
        galois::cc_sv(g, galois_threads);
    });
    let (_, k1) = run_timed(&one_cvc, threads, |dg, ctx| algos::cc::cc_sv(dg, ctx, &b));
    let (_, kn) = run_timed(&many_cvc, threads, |dg, ctx| algos::cc::cc_sv(dg, ctx, &b));
    row("CC-SV", ga, &k1, &kn);

    // MIS.
    let ga = galois_time(|| {
        galois::mis(g, galois_threads);
    });
    let (_, k1) = run_timed(&one_cvc, threads, |dg, ctx| algos::mis(dg, ctx, &b));
    let (_, kn) = run_timed(&many_cvc, threads, |dg, ctx| algos::mis(dg, ctx, &b));
    row("MIS", ga, &k1, &kn);
}

fn main() {
    let cluster_hosts = *Inputs::medium_hosts().last().unwrap_or(&4);
    print_title(
        "Table 3: Galois (1 host) vs Kimbap (1 host / cluster)",
        &format!("cluster column uses {cluster_hosts} hosts"),
    );
    print_row(&[
        "app".into(),
        "graph".into(),
        "galois-1".into(),
        "kimbap-1".into(),
        format!("kimbap-{cluster_hosts}"),
    ]);
    bench_graph("road", &Inputs::road(), cluster_hosts);
    bench_graph("social", &Inputs::social(), cluster_hosts);
    println!(
        "\nexpected shapes: galois wins MSF and CC-SV on one host (async atomics\n\
         vs BSP); LV/CC-LP/MIS comparable; kimbap-N fastest overall on social."
    );
}
