//! Criterion micro/ablation benchmarks for the node-property map's design
//! choices: the GAR read layout (dense vector + sorted-vector binary
//! search vs a hash map), conflict-free thread-local reductions vs a
//! shared sharded-lock map, and the request-dedup bitset vs a hash set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kimbap_bench::json;
use kimbap_comm::Cluster;
use kimbap_dist::{partition, Policy};
use kimbap_graph::gen;
use kimbap_npm::{ConcurrentBitset, Min, NodePropMap, Npm, Sum, Variant};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// GAR read layout: dense vector (masters) and sorted-vector binary search
/// (remote cache) vs the general-purpose hash map.
fn bench_read_layouts(c: &mut Criterion) {
    let n = 100_000usize;
    let dense: Vec<u64> = (0..n as u64).collect();
    let sorted_keys: Vec<u32> = (0..n as u32).map(|i| i * 7).collect();
    let sorted_vals: Vec<u64> = (0..n as u64).collect();
    let map: HashMap<u32, u64> = sorted_keys.iter().map(|&k| (k, k as u64)).collect();
    let probes: Vec<u32> = (0..1000u32).map(|i| (i * 7919) % (7 * n as u32)).collect();

    let mut g = c.benchmark_group("read_layout");
    g.bench_function("dense_vector(master)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &probes {
                acc = acc.wrapping_add(dense[(p as usize) % n]);
            }
            black_box(acc)
        })
    });
    g.bench_function("sorted_binary_search(remote)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &probes {
                if let Ok(i) = sorted_keys.binary_search(&p) {
                    acc = acc.wrapping_add(sorted_vals[i]);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("hash_map(general purpose)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &probes {
                if let Some(&v) = map.get(&p) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// CF thread-local maps vs the shared sharded-lock map, on a hub-heavy
/// reduction workload (every thread hammers the same few keys — a
/// power-law graph's reduction profile).
fn bench_reduce_contention(c: &mut Criterion) {
    let g = gen::rmat(10, 8, 3);
    let parts = partition(&g, Policy::EdgeCutBlocked, 1);
    let mut group = c.benchmark_group("reduce_contention");
    group.sample_size(10);
    for (label, variant) in [("cf_thread_local", Variant::SgrCf), ("shared_map", Variant::SgrOnly)]
    {
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let parts = &parts;
                    let elapsed = Cluster::with_threads(1, 4).run(|ctx| {
                        let npm: Npm<u64, Sum> =
                            Npm::with_variant(&parts[0], ctx, Sum, variant);
                        let t = Instant::now();
                        ctx.par_for(0..200_000, |tid, range| {
                            for i in range {
                                // 90% of reduces hit 8 hub keys.
                                let key = if i % 10 != 0 { (i % 8) as u32 } else { (i % 1024) as u32 };
                                npm.reduce(tid, key, 1);
                            }
                        });
                        t.elapsed()
                    });
                    total += elapsed[0];
                }
                total
            })
        });
    }
    group.finish();
}

/// Request de-duplication: the concurrent bitset vs a locked hash set.
fn bench_request_dedup(c: &mut Criterion) {
    let n = 1 << 20;
    let keys: Vec<usize> = (0..100_000).map(|i| (i * 31) % n).collect();
    let mut g = c.benchmark_group("request_dedup");
    g.bench_function("concurrent_bitset", |b| {
        b.iter_batched(
            || ConcurrentBitset::new(n),
            |bits| {
                for &k in &keys {
                    bits.set(k);
                }
                black_box(bits.count_set())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("locked_hash_set", |b| {
        b.iter_batched(
            parking_lot_mutex_set,
            |set| {
                for &k in &keys {
                    set.lock().insert(k);
                }
                black_box(set.lock().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn parking_lot_mutex_set() -> parking_lot::Mutex<HashSet<usize>> {
    parking_lot::Mutex::new(HashSet::new())
}

/// Reduce-compute hot path of the default (SGR+CF+GAR) backend: per-call
/// cost of `Npm::reduce` on a hub-heavy workload mixing owned keys (the
/// dense local range) and remote keys. This is the bench the perf
/// trajectory in `BENCH_*.json` tracks for the CF buffer rebuild.
fn bench_reduce_compute_gar(c: &mut Criterion) {
    let g = gen::rmat(10, 8, 3);
    let hosts = 2;
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let mut group = c.benchmark_group("reduce_compute");
    group.sample_size(10);
    group.bench_function("sgr_cf_gar", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let parts = &parts;
                let times = Cluster::with_threads(hosts, 4).run(|ctx| {
                    let dg = &parts[ctx.host()];
                    let npm: Npm<u64, Sum> =
                        Npm::with_variant(dg, ctx, Sum, Variant::SgrCfGar);
                    let n = dg.num_global_nodes() as u32;
                    let t = Instant::now();
                    ctx.par_for(0..400_000, |tid, range| {
                        for i in range {
                            // 90% of reduces hit 8 hub keys; the rest
                            // scatter across the whole (owned + remote)
                            // key space.
                            let key =
                                if i % 10 != 0 { (i % 8) as u32 } else { (i as u32 * 7919) % n };
                            npm.reduce(tid, key, 1);
                        }
                    });
                    t.elapsed()
                });
                total += times.into_iter().max().unwrap();
            }
            json::record_micro(
                "micro_npm",
                "reduce_compute/sgr_cf_gar",
                total.as_nanos() as f64 / iters as f64,
            );
            total
        })
    });
    group.finish();
}

/// Materialized-mirror reads under GAR: per-call cost of `Npm::read` for a
/// pinned mirror (served by the remote cache). The second bench the perf
/// trajectory in `BENCH_*.json` tracks.
fn bench_mirror_reads(c: &mut Criterion) {
    let g = gen::rmat(10, 8, 5);
    let hosts = 4;
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let mut group = c.benchmark_group("mirror_reads");
    group.sample_size(10);
    group.bench_function("sgr_cf_gar_pinned", |b| {
        b.iter_custom(|iters| {
            let parts = &parts;
            let times = Cluster::with_threads(hosts, 2).run(|ctx| {
                let dg = &parts[ctx.host()];
                let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
                npm.init_masters(&|g| g as u64);
                npm.pin_mirrors(ctx);
                let mirrors = dg.mirror_globals();
                let t = Instant::now();
                let mut acc = 0u64;
                for _ in 0..iters {
                    for &m in mirrors {
                        acc = acc.wrapping_add(npm.read(m));
                    }
                }
                black_box(acc);
                t.elapsed()
            });
            let total = times.into_iter().max().unwrap();
            json::record_micro(
                "micro_npm",
                "mirror_reads/sgr_cf_gar_pinned",
                total.as_nanos() as f64 / iters as f64,
            );
            total
        })
    });
    group.finish();
}

/// End-to-end sync cost of one BSP reduce round at increasing host counts.
fn bench_reduce_sync_round(c: &mut Criterion) {
    let g = gen::rmat(10, 8, 5);
    let mut group = c.benchmark_group("reduce_sync_round");
    group.sample_size(10);
    for hosts in [1usize, 2, 4] {
        let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
        group.bench_function(format!("{hosts}_hosts"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let parts = &parts;
                    let times = Cluster::with_threads(hosts, 2).run(|ctx| {
                        let dg = &parts[ctx.host()];
                        let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
                        npm.init_masters(&|g| g as u64);
                        ctx.par_for(0..dg.num_local_nodes(), |tid, range| {
                            for l in range {
                                let gid = dg.local_to_global(l as u32);
                                npm.reduce(tid, gid, gid as u64 / 2);
                            }
                        });
                        let t = Instant::now();
                        npm.reduce_sync(ctx);
                        t.elapsed()
                    });
                    total += times.into_iter().max().unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_read_layouts,
    bench_reduce_contention,
    bench_request_dedup,
    bench_reduce_compute_gar,
    bench_mirror_reads,
    bench_reduce_sync_round
);
criterion_main!(benches);
