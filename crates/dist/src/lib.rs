//! Graph partitioning and per-host distributed graphs.
//!
//! To run a vertex program on a cluster, the input graph's *edges* are
//! partitioned among hosts and *proxy nodes* are created for edge
//! endpoints. For every node, exactly one proxy — on the host that owns the
//! node — is the **master**, holding the canonical property value; proxies
//! on other hosts are **mirrors** (§2.2 of the paper).
//!
//! This crate provides:
//!
//! * [`Ownership`] — the node → owning-host map (blocked or hashed), with
//!   O(1) arithmetic from a global node id to its owner and to its dense
//!   *master offset* on that owner. This arithmetic is what makes the
//!   node-property map's graph-partition-aware representation (GAR) cheap.
//! * [`Policy`] — edge-assignment policies: outgoing edge-cut (blocked or
//!   hashed) and the 2-D Cartesian vertex-cut used by the paper for CC,
//!   MSF, and MIS.
//! * [`DistGraph`] — one host's partition: a local CSR whose local ids put
//!   all masters first (ordered by global id) followed by mirrors, plus the
//!   mirror lists each host needs to broadcast master values.
//!
//! Partitioning happens up front via [`partition`], which builds every
//! host's `DistGraph` in one pass — the paper likewise excludes graph
//! loading/partitioning from all measurements.
//!
//! # Example
//!
//! ```
//! use kimbap_dist::{partition, Policy};
//! use kimbap_graph::gen;
//!
//! let g = gen::grid_road(8, 8, 0);
//! let parts = partition(&g, Policy::EdgeCutBlocked, 4);
//! assert_eq!(parts.len(), 4);
//! // Every directed edge lives on exactly one host.
//! let total: usize = parts.iter().map(|p| p.num_local_edges()).sum();
//! assert_eq!(total, g.num_edges());
//! ```

pub mod dist_graph;
pub mod ownership;
pub mod policy;

pub use dist_graph::{
    assemble_dist_graph, partition, partition_cfg, DistGraph, LocalId, PartitionCfg,
};
pub use ownership::{Ownership, Scheme};
pub use policy::Policy;
