//! One host's partition of the graph.

use crate::ownership::Ownership;
use crate::policy::Policy;
use kimbap_comm::wire::{encode_slice, iter_decoded};
use kimbap_comm::HostCtx;
use kimbap_graph::store::{EdgeIter, GraphStore, NeighborsRef, TargetIter};
use kimbap_graph::{Graph, NodeId, Weight};
use std::fmt;

/// Identifier of a proxy node local to one host. Local ids `0..num_masters`
/// are masters (ordered by global id); the rest are mirrors (also ordered by
/// global id).
pub type LocalId = u32;

/// One host's partition: a local CSR over proxy nodes, plus the metadata
/// needed to translate ids and synchronize with other hosts.
///
/// Produced by [`partition`]. The local graph contains exactly the directed
/// edges the [`Policy`] assigned to this host; proxies exist for all owned
/// nodes (masters, even if locally isolated) and for every non-owned
/// endpoint of a local edge (mirrors).
pub struct DistGraph {
    host: usize,
    ownership: Ownership,
    policy: Policy,
    /// Global id of each local proxy; masters first, then mirrors, each
    /// sorted by global id.
    l2g: Vec<NodeId>,
    num_masters: usize,
    /// Local CSR over proxy ids — raw arrays or the compressed tier.
    store: GraphStore,
    /// Transpose of the local CSR: for each proxy, the local sources of
    /// its in-edges. Maps an updated node to the dependents that read it
    /// through `ForEdges` — the fan-in the frontier scheduler follows.
    in_offsets: Vec<u64>,
    in_sources: Vec<LocalId>,
    /// For each peer host `h`: sorted global ids of *my masters* that have a
    /// mirror proxy on `h` (what a broadcast to `h` must cover).
    mirrors_on_peer: Vec<Vec<NodeId>>,
    /// Dense global-id → mirror-slot table (`NO_MIRROR` = no mirror proxy
    /// here). Mirror slot `s` is local id `num_masters + s`. Trades one
    /// `u32` per global node for O(1) mirror resolution on the read hot
    /// path — the sorted `l2g` tail stays authoritative for iteration
    /// order and the wire format.
    mirror_slot_of: Vec<u32>,
}

/// Vacant entry in [`DistGraph::mirror_slot_of`].
const NO_MIRROR: u32 = u32::MAX;

impl DistGraph {
    /// This host's id.
    pub fn host(&self) -> usize {
        self.host
    }

    /// Number of hosts in the partitioning.
    pub fn num_hosts(&self) -> usize {
        self.ownership.num_hosts()
    }

    /// The node-ownership map shared by all hosts.
    pub fn ownership(&self) -> &Ownership {
        &self.ownership
    }

    /// The policy this partition was built with.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Total nodes in the *global* graph.
    pub fn num_global_nodes(&self) -> usize {
        self.ownership.num_nodes()
    }

    /// Number of local proxies (masters + mirrors).
    pub fn num_local_nodes(&self) -> usize {
        self.l2g.len()
    }

    /// Number of masters on this host.
    pub fn num_masters(&self) -> usize {
        self.num_masters
    }

    /// Number of mirror proxies on this host.
    pub fn num_mirrors(&self) -> usize {
        self.l2g.len() - self.num_masters
    }

    /// Number of directed edges stored on this host.
    pub fn num_local_edges(&self) -> usize {
        self.store.num_edges()
    }

    /// `true` if the local CSR is stored on the compressed tier.
    pub fn is_compressed(&self) -> bool {
        self.store.is_compressed()
    }

    /// `true` if this partition split any hub's edge list across hosts —
    /// when set, mirrors may carry out-edges and algorithms that assumed
    /// the pure edge-cut invariant must consult all proxies' edges.
    pub fn has_split_hubs(&self) -> bool {
        self.policy.splits_hubs() && self.ownership.has_hubs()
    }

    /// In-memory bytes of this host's partition: the local CSR store plus
    /// the transpose, id maps, and mirror metadata.
    pub fn size_bytes(&self) -> usize {
        self.store.size_bytes()
            + self.in_offsets.capacity() * std::mem::size_of::<u64>()
            + self.in_sources.capacity() * std::mem::size_of::<LocalId>()
            + self.l2g.capacity() * std::mem::size_of::<NodeId>()
            + self.mirror_slot_of.capacity() * std::mem::size_of::<u32>()
            + self
                .mirrors_on_peer
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }

    /// Global id of local proxy `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn local_to_global(&self, l: LocalId) -> NodeId {
        self.l2g[l as usize]
    }

    /// Local proxy id for global node `g`, if `g` has a proxy here.
    pub fn global_to_local(&self, g: NodeId) -> Option<LocalId> {
        if self.ownership.owner(g) == self.host {
            return Some(self.ownership.master_offset(g) as LocalId);
        }
        self.mirror_slot(g)
            .map(|s| self.num_masters as LocalId + s)
    }

    /// Dense mirror slot of global node `g` (`0 .. num_mirrors`, ordered
    /// by global id), or `None` if `g` has no mirror proxy here. O(1):
    /// backed by a dense per-global-node table. Mirror slot `s`
    /// corresponds to local id `num_masters + s`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is outside the global node space.
    #[inline]
    pub fn mirror_slot(&self, g: NodeId) -> Option<u32> {
        let s = self.mirror_slot_of[g as usize];
        (s != NO_MIRROR).then_some(s)
    }

    /// `true` if local proxy `l` is a master.
    pub fn is_master(&self, l: LocalId) -> bool {
        (l as usize) < self.num_masters
    }

    /// Iterates local ids of all proxies.
    pub fn local_nodes(&self) -> impl Iterator<Item = LocalId> {
        0..self.num_local_nodes() as LocalId
    }

    /// Iterates local ids of masters only.
    pub fn master_nodes(&self) -> impl Iterator<Item = LocalId> {
        0..self.num_masters as LocalId
    }

    /// Iterates local ids of mirrors only.
    pub fn mirror_nodes(&self) -> impl Iterator<Item = LocalId> {
        self.num_masters as LocalId..self.num_local_nodes() as LocalId
    }

    /// Global ids of this host's mirror proxies (sorted).
    pub fn mirror_globals(&self) -> &[NodeId] {
        &self.l2g[self.num_masters..]
    }

    /// Out-degree of local proxy `l` on this host.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn degree(&self, l: LocalId) -> usize {
        self.store.degree(l)
    }

    /// Local out-neighbors of proxy `l` — borrowed on the raw tier,
    /// decoded into a per-thread scratch buffer on the compressed tier.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn neighbors(&self, l: LocalId) -> NeighborsRef<'_> {
        self.store.neighbors(l)
    }

    /// Iterates `(local_neighbor, weight)` of proxy `l`'s out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn edges(&self, l: LocalId) -> EdgeIter<'_> {
        self.store.edges(l)
    }

    /// Iterates just the targets of `l`'s local out-edges — the path for
    /// weight-blind algorithms (no weight decode on the compressed tier).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn targets(&self, l: LocalId) -> TargetIter<'_> {
        self.store.targets(l)
    }

    /// In-degree of local proxy `l` (edges of the local CSR ending at `l`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn in_degree(&self, l: LocalId) -> usize {
        let l = l as usize;
        (self.in_offsets[l + 1] - self.in_offsets[l]) as usize
    }

    /// Local in-neighbors of proxy `l`: every proxy with a local out-edge
    /// ending at `l` (sorted; parallel edges contribute one entry each).
    /// When a property keyed by `l` changes, these are the nodes whose
    /// adjacent-key reads observe the change.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn in_neighbors(&self, l: LocalId) -> &[LocalId] {
        let l = l as usize;
        &self.in_sources[self.in_offsets[l] as usize..self.in_offsets[l + 1] as usize]
    }

    /// Sum of local edge weights of proxy `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn weighted_degree(&self, l: LocalId) -> u64 {
        self.store.weighted_degree(l)
    }

    /// Sorted global ids of this host's masters that have mirrors on peer
    /// host `peer` — the recipients of a broadcast to that peer.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    pub fn mirrors_on_peer(&self, peer: usize) -> &[NodeId] {
        &self.mirrors_on_peer[peer]
    }
}

impl fmt::Debug for DistGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistGraph")
            .field("host", &self.host)
            .field("masters", &self.num_masters)
            .field("mirrors", &self.num_mirrors())
            .field("edges", &self.num_local_edges())
            .finish()
    }
}

/// Storage and placement knobs for [`partition_cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionCfg {
    /// Edge-assignment policy.
    pub policy: Policy,
    /// Number of hosts.
    pub hosts: usize,
    /// Store each host's local CSR on the compressed tier.
    pub compressed: bool,
    /// Split the edge lists of nodes with degree above this threshold
    /// across hosts (only for policies where [`Policy::splits_hubs`]).
    /// `None` = no hub splitting.
    pub hub_degree_threshold: Option<usize>,
}

impl PartitionCfg {
    /// Raw storage, no hub splitting — the classic [`partition`] behavior.
    pub fn new(policy: Policy, hosts: usize) -> Self {
        PartitionCfg {
            policy,
            hosts,
            compressed: false,
            hub_degree_threshold: None,
        }
    }
}

/// Partitions `graph` across `num_hosts` hosts under `policy`, producing one
/// [`DistGraph`] per host (indexed by host id). Raw storage, no hub
/// splitting; see [`partition_cfg`] for the knobs.
///
/// Construction is deterministic. Like the paper, partitioning time is not
/// part of any measured experiment, so this single-pass global construction
/// (rather than a distributed streaming partitioner like CuSP) is a faithful
/// substitution.
///
/// # Panics
///
/// Panics if `num_hosts == 0`.
pub fn partition(graph: &Graph, policy: Policy, num_hosts: usize) -> Vec<DistGraph> {
    partition_cfg(graph, &PartitionCfg::new(policy, num_hosts))
}

/// [`partition`] with storage/placement knobs: compressed local CSRs
/// and/or degree-aware hub splitting.
///
/// # Panics
///
/// Panics if `cfg.hosts == 0`.
pub fn partition_cfg(graph: &Graph, cfg: &PartitionCfg) -> Vec<DistGraph> {
    let (policy, num_hosts) = (cfg.policy, cfg.hosts);
    assert!(num_hosts > 0, "need at least one host");
    let n = graph.num_nodes();
    let mut own = policy.ownership(n, num_hosts);
    if let Some(thresh) = cfg.hub_degree_threshold {
        if policy.splits_hubs() && num_hosts > 1 {
            let hubs: Vec<NodeId> = graph
                .nodes()
                .filter(|&u| graph.degree(u) > thresh)
                .collect();
            own = own.with_hubs(hubs);
        }
    }

    // Pass 1: assign every directed edge to a host.
    let mut host_edges: Vec<Vec<(NodeId, NodeId, Weight)>> = vec![Vec::new(); num_hosts];
    for (u, v, w) in graph.all_edges() {
        host_edges[policy.assign(&own, u, v)].push((u, v, w));
    }

    // Pass 2: build each host's local graph.
    let mut parts: Vec<DistGraph> = host_edges
        .into_iter()
        .enumerate()
        .map(|(h, edges)| build_part(h, &own, policy, &edges, cfg.compressed))
        .collect();

    // Pass 3: tell each owner which peers mirror its masters (in a real
    // deployment this is the mirror-list exchange at partitioning time).
    let all_mirrors: Vec<Vec<NodeId>> = parts
        .iter()
        .map(|p| p.mirror_globals().to_vec())
        .collect();
    for (peer, mirrored) in all_mirrors.iter().enumerate() {
        for &g in mirrored {
            let owner = own.owner(g);
            parts[owner].mirrors_on_peer[peer].push(g);
        }
    }
    for p in &mut parts {
        for list in &mut p.mirrors_on_peer {
            list.sort_unstable();
        }
    }
    parts
}

/// Builds one host's [`DistGraph`] from the edges assigned to it, *without*
/// the mirror-list exchange (callers fill `mirrors_on_peer`).
fn build_part(
    h: usize,
    own: &Ownership,
    policy: Policy,
    edges: &[(NodeId, NodeId, Weight)],
    compressed: bool,
) -> DistGraph {
    let num_hosts = own.num_hosts();
    let num_masters = own.num_masters(h);
    let mut mirrors: Vec<NodeId> = edges
        .iter()
        .flat_map(|&(u, v, _)| [u, v])
        .filter(|&x| own.owner(x) != h)
        .collect();
    mirrors.sort_unstable();
    mirrors.dedup();

    let mut l2g: Vec<NodeId> = own.masters(h).collect();
    l2g.extend_from_slice(&mirrors);

    let to_local = |g: NodeId| -> LocalId {
        if own.owner(g) == h {
            own.master_offset(g) as LocalId
        } else {
            (num_masters + mirrors.binary_search(&g).unwrap()) as LocalId
        }
    };

    let nl = l2g.len();
    let mut local_edges: Vec<(LocalId, LocalId, Weight)> = edges
        .iter()
        .map(|&(u, v, w)| (to_local(u), to_local(v), w))
        .collect();
    local_edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
    let mut offsets = vec![0u64; nl + 1];
    for &(s, _, _) in &local_edges {
        offsets[s as usize + 1] += 1;
    }
    for i in 0..nl {
        offsets[i + 1] += offsets[i];
    }
    let targets: Vec<LocalId> = local_edges.iter().map(|&(_, d, _)| d).collect();
    let weights = local_edges.iter().map(|&(_, _, w)| w).collect();

    // Transpose CSR: bucket every edge by destination. Scanning edges in
    // (s, d) order fills each destination's bucket with ascending sources.
    let mut in_offsets = vec![0u64; nl + 1];
    for &(_, d, _) in &local_edges {
        in_offsets[d as usize + 1] += 1;
    }
    for i in 0..nl {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut in_sources = vec![0 as LocalId; targets.len()];
    let mut cursor = in_offsets.clone();
    for &(s, d, _) in &local_edges {
        in_sources[cursor[d as usize] as usize] = s;
        cursor[d as usize] += 1;
    }

    let mut mirror_slot_of = vec![NO_MIRROR; own.num_nodes()];
    for (slot, &g) in mirrors.iter().enumerate() {
        mirror_slot_of[g as usize] = slot as u32;
    }

    let store = GraphStore::Raw {
        offsets,
        targets,
        weights,
    };
    let store = if compressed { store.compressed() } else { store };

    DistGraph {
        host: h,
        ownership: own.clone(),
        policy,
        l2g,
        num_masters,
        store,
        in_offsets,
        in_sources,
        mirrors_on_peer: vec![Vec::new(); num_hosts],
        mirror_slot_of,
    }
}

/// Distributed graph assembly: every host contributes the edges *it
/// produced* (e.g. the coarse edges of a Louvain aggregation step); edges
/// are routed to the hosts the `policy` assigns them to, and each host
/// builds its own [`DistGraph`] over a global node space of `n_global`
/// nodes, exchanging mirror lists with its peers.
///
/// This is the distributed analog of [`partition`] (a CuSP-style streaming
/// partitioner): no host ever sees the whole graph. Collective — every host
/// must call it together.
///
/// Duplicate edges contributed by different hosts are merged by summing
/// weights (community-aggregation semantics).
///
/// # Panics
///
/// Panics if an edge references a node `>= n_global`.
pub fn assemble_dist_graph(
    ctx: &HostCtx,
    n_global: usize,
    policy: Policy,
    produced_edges: Vec<(NodeId, NodeId, Weight)>,
) -> DistGraph {
    let num_hosts = ctx.num_hosts();
    let host = ctx.host();
    let own = policy.ownership(n_global, num_hosts);

    // Route each produced edge to its assigned host.
    let mut per_host: Vec<Vec<(NodeId, NodeId, Weight)>> = vec![Vec::new(); num_hosts];
    for (u, v, w) in produced_edges {
        assert!(
            (u as usize) < n_global && (v as usize) < n_global,
            "edge ({u},{v}) outside node space {n_global}"
        );
        per_host[policy.assign(&own, u, v)].push((u, v, w));
    }
    let outgoing = per_host
        .iter()
        .enumerate()
        .map(|(h, edges)| {
            if h == host {
                Vec::new()
            } else {
                encode_slice(&edges.iter().map(|&(u, v, w)| (u, (v, w))).collect::<Vec<_>>())
            }
        })
        .collect();
    let received = ctx.exchange(outgoing);

    // My edge set = locally produced + received; merge duplicates by sum.
    let mut my_edges = std::mem::take(&mut per_host[host]);
    for (h, buf) in received.iter().enumerate() {
        if h == host {
            continue;
        }
        for (u, (v, w)) in iter_decoded::<(NodeId, (NodeId, Weight))>(buf) {
            my_edges.push((u, v, w));
        }
    }
    my_edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    my_edges.dedup_by(|next, acc| {
        if acc.0 == next.0 && acc.1 == next.1 {
            acc.2 += next.2;
            true
        } else {
            false
        }
    });

    // Coarse/assembled graphs stay on the raw tier with no hub table:
    // they are rebuilt every level and read once.
    let mut dg = build_part(host, &own, policy, &my_edges, false);

    // Mirror-list exchange: tell each node's owner that we mirror it.
    let outgoing = (0..num_hosts)
        .map(|peer| {
            if peer == host {
                return Vec::new();
            }
            let mine: Vec<NodeId> = dg
                .mirror_globals()
                .iter()
                .copied()
                .filter(|&g| own.owner(g) == peer)
                .collect();
            encode_slice(&mine)
        })
        .collect();
    let received = ctx.exchange(outgoing);
    for (peer, buf) in received.iter().enumerate() {
        if peer == host {
            continue;
        }
        let mut list: Vec<NodeId> = iter_decoded::<NodeId>(buf).collect();
        list.sort_unstable();
        dg.mirrors_on_peer[peer] = list;
    }
    dg
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_graph::gen;

    fn check_partition(g: &Graph, policy: Policy, hosts: usize) {
        let parts = partition(g, policy, hosts);
        assert_eq!(parts.len(), hosts);

        // Edge conservation.
        let total: usize = parts.iter().map(|p| p.num_local_edges()).sum();
        assert_eq!(total, g.num_edges());

        // Master conservation: each global node is a master exactly once.
        let total_masters: usize = parts.iter().map(|p| p.num_masters()).sum();
        assert_eq!(total_masters, g.num_nodes());

        for p in &parts {
            // Round-trip id mapping.
            for l in p.local_nodes() {
                let gid = p.local_to_global(l);
                assert_eq!(p.global_to_local(gid), Some(l));
                assert_eq!(p.is_master(l), p.ownership().owner(gid) == p.host());
            }
            // Local edges preserve global weights.
            for l in p.local_nodes() {
                for (t, w) in p.edges(l) {
                    let (gu, gv) = (p.local_to_global(l), p.local_to_global(t));
                    let found = g.edges(gu).any(|(x, xw)| x == gv && xw == w);
                    assert!(found, "edge ({gu},{gv},{w}) not in global graph");
                }
            }
            // Mirror lists point back correctly.
            for (peer, peer_part) in parts.iter().enumerate() {
                for &gid in p.mirrors_on_peer(peer) {
                    assert_eq!(p.ownership().owner(gid), p.host());
                    assert!(peer_part.mirror_globals().contains(&gid));
                }
            }
        }

        // Every mirror appears in its owner's mirror list for that peer.
        for p in &parts {
            for &gid in p.mirror_globals() {
                let owner = p.ownership().owner(gid);
                assert!(parts[owner].mirrors_on_peer(p.host()).contains(&gid));
            }
        }
    }

    #[test]
    fn edge_cut_blocked_partitions() {
        let g = gen::grid_road(6, 6, 1);
        for hosts in [1, 2, 3, 4] {
            check_partition(&g, Policy::EdgeCutBlocked, hosts);
        }
    }

    #[test]
    fn edge_cut_hashed_partitions() {
        let g = gen::rmat(7, 4, 2);
        for hosts in [1, 2, 5] {
            check_partition(&g, Policy::EdgeCutHashed, hosts);
        }
    }

    #[test]
    fn cvc_partitions() {
        let g = gen::rmat(7, 4, 3);
        for hosts in [1, 2, 4, 6] {
            check_partition(&g, Policy::CartesianVertexCut, hosts);
        }
    }

    #[test]
    fn iec_mirrors_have_no_in_edges() {
        let g = gen::rmat(7, 4, 4);
        for p in partition(&g, Policy::EdgeCutIncoming, 4) {
            let mut has_in = vec![false; p.num_local_nodes()];
            for l in p.local_nodes() {
                for (t, _) in p.edges(l) {
                    has_in[t as usize] = true;
                }
            }
            for m in p.mirror_nodes() {
                assert!(!has_in[m as usize], "IEC mirror with in-edges");
            }
        }
    }

    #[test]
    fn oec_mirrors_have_no_out_edges() {
        let g = gen::rmat(7, 4, 4);
        for p in partition(&g, Policy::EdgeCutBlocked, 4) {
            for m in p.mirror_nodes() {
                assert_eq!(p.degree(m), 0, "OEC mirror with out-edges");
            }
        }
    }

    #[test]
    fn transpose_inverts_local_edges() {
        let g = gen::rmat(7, 4, 8);
        for policy in [Policy::EdgeCutBlocked, Policy::CartesianVertexCut] {
            for p in partition(&g, policy, 3) {
                // Every out-edge (s, d) appears exactly once as d's
                // in-neighbor s, and nothing else does.
                let mut expected: Vec<Vec<LocalId>> =
                    vec![Vec::new(); p.num_local_nodes()];
                for s in p.local_nodes() {
                    for &d in p.neighbors(s).iter() {
                        expected[d as usize].push(s);
                    }
                }
                for d in p.local_nodes() {
                    expected[d as usize].sort_unstable();
                    assert_eq!(
                        p.in_neighbors(d),
                        expected[d as usize].as_slice(),
                        "in-edges of local {d} diverge from transpose"
                    );
                    assert_eq!(p.in_degree(d), expected[d as usize].len());
                }
                let total_in: usize =
                    p.local_nodes().map(|l| p.in_degree(l)).sum();
                assert_eq!(total_in, p.num_local_edges());
            }
        }
    }

    #[test]
    fn single_host_has_no_mirrors() {
        let g = gen::grid_road(4, 4, 0);
        let parts = partition(&g, Policy::CartesianVertexCut, 1);
        assert_eq!(parts[0].num_mirrors(), 0);
        assert_eq!(parts[0].num_local_edges(), g.num_edges());
    }

    #[test]
    fn assemble_matches_partition() {
        // Distribute edge production arbitrarily across hosts; the
        // assembled DistGraphs must match the global partitioner's output.
        let g = gen::rmat(6, 4, 11);
        let hosts = 3;
        for policy in [Policy::EdgeCutBlocked, Policy::CartesianVertexCut] {
            let reference = partition(&g, policy, hosts);
            let assembled = kimbap_comm::Cluster::new(hosts).run(|ctx| {
                // Host h contributes every third edge, offset by h.
                let produced: Vec<_> = g
                    .all_edges()
                    .enumerate()
                    .filter(|(i, _)| i % hosts == ctx.host())
                    .map(|(_, e)| e)
                    .collect();
                assemble_dist_graph(ctx, g.num_nodes(), policy, produced)
            });
            for (a, r) in assembled.iter().zip(&reference) {
                assert_eq!(a.num_masters(), r.num_masters());
                assert_eq!(a.num_mirrors(), r.num_mirrors());
                assert_eq!(a.num_local_edges(), r.num_local_edges());
                assert_eq!(a.l2g, r.l2g);
                assert_eq!(a.store, r.store);
                assert_eq!(a.mirrors_on_peer, r.mirrors_on_peer);
            }
        }
    }

    #[test]
    fn assemble_merges_duplicate_edges() {
        // Both hosts contribute the same edge; weights must sum.
        let out = kimbap_comm::Cluster::new(2).run(|ctx| {
            let dg = assemble_dist_graph(
                ctx,
                4,
                Policy::EdgeCutBlocked,
                vec![(0, 1, 5), (1, 0, 5)],
            );
            if ctx.host() == 0 {
                let l0 = dg.global_to_local(0).unwrap();
                dg.edges(l0).collect::<Vec<_>>()
            } else {
                Vec::new()
            }
        });
        let l1 = out[0][0];
        assert_eq!(l1.1, 10); // two hosts x weight 5
    }

    #[test]
    fn compressed_partition_is_indistinguishable() {
        let g = gen::rmat(7, 4, 6);
        for policy in [Policy::EdgeCutBlocked, Policy::CartesianVertexCut] {
            let raw = partition(&g, policy, 3);
            let mut cfg = PartitionCfg::new(policy, 3);
            cfg.compressed = true;
            let comp = partition_cfg(&g, &cfg);
            for (r, c) in raw.iter().zip(&comp) {
                assert!(c.is_compressed() && !r.is_compressed());
                assert_eq!(r.l2g, c.l2g);
                assert_eq!(r.num_local_edges(), c.num_local_edges());
                for l in r.local_nodes() {
                    assert_eq!(r.degree(l), c.degree(l));
                    assert_eq!(&r.neighbors(l)[..], &c.neighbors(l)[..]);
                    assert_eq!(
                        r.edges(l).collect::<Vec<_>>(),
                        c.edges(l).collect::<Vec<_>>()
                    );
                    assert_eq!(r.in_neighbors(l), c.in_neighbors(l));
                    assert_eq!(r.weighted_degree(l), c.weighted_degree(l));
                }
                assert_eq!(r.mirrors_on_peer, c.mirrors_on_peer);
                assert!(c.size_bytes() < r.size_bytes());
            }
        }
    }

    fn hub_cfg(hosts: usize, thresh: usize) -> PartitionCfg {
        let mut cfg = PartitionCfg::new(Policy::EdgeCutBlocked, hosts);
        cfg.hub_degree_threshold = Some(thresh);
        cfg
    }

    #[test]
    fn hub_split_conserves_edges_and_masters() {
        let g = gen::rmat(8, 8, 4);
        let parts = partition_cfg(&g, &hub_cfg(4, 32));
        assert!(parts[0].has_split_hubs());
        let total: usize = parts.iter().map(|p| p.num_local_edges()).sum();
        assert_eq!(total, g.num_edges());
        let total_masters: usize = parts.iter().map(|p| p.num_masters()).sum();
        assert_eq!(total_masters, g.num_nodes());
        // Every local edge still mirrors a real global edge.
        for p in &parts {
            for l in p.local_nodes() {
                for (t, w) in p.edges(l) {
                    let (gu, gv) = (p.local_to_global(l), p.local_to_global(t));
                    assert!(g.edges(gu).any(|(x, xw)| x == gv && xw == w));
                }
            }
        }
    }

    #[test]
    fn hub_split_scatters_hub_edges_to_neighbor_owners() {
        let g = gen::rmat(8, 8, 4);
        let thresh = 32;
        let parts = partition_cfg(&g, &hub_cfg(4, thresh));
        let own = parts[0].ownership().clone();
        for p in &parts {
            for l in p.local_nodes() {
                let gu = p.local_to_global(l);
                if own.is_hub(gu) {
                    // Every stored out-edge of a hub ends at a locally
                    // owned master.
                    for (t, _) in p.edges(l) {
                        let gv = p.local_to_global(t);
                        assert_eq!(
                            own.owner(gv),
                            p.host(),
                            "hub {gu} edge to {gv} on wrong host"
                        );
                    }
                } else if !p.is_master(l) {
                    // Non-hub mirrors keep the OEC invariant.
                    assert_eq!(p.degree(l), 0, "non-hub OEC mirror with out-edges");
                }
            }
        }
    }

    #[test]
    fn hub_split_reduces_max_host_edges() {
        // A star graph: one hub, everything at its owner without splitting.
        let mut b = kimbap_graph::GraphBuilder::new();
        for v in 1..200u32 {
            b.add_edge(0, v, 1);
        }
        let g = b.symmetric(true).build();
        let no_hub = partition(&g, Policy::EdgeCutBlocked, 4);
        let hub = partition_cfg(&g, &hub_cfg(4, 16));
        let max_edges = |ps: &[DistGraph]| {
            ps.iter().map(|p| p.num_local_edges()).max().unwrap()
        };
        assert!(
            max_edges(&hub) * 2 < max_edges(&no_hub),
            "hub {} vs no-hub {}",
            max_edges(&hub),
            max_edges(&no_hub)
        );
    }

    #[test]
    fn single_host_never_splits_hubs() {
        let g = gen::rmat(7, 8, 4);
        let parts = partition_cfg(&g, &hub_cfg(1, 4));
        assert!(!parts[0].has_split_hubs());
        assert_eq!(parts[0].num_local_edges(), g.num_edges());
    }

    #[test]
    fn isolated_nodes_are_masters_somewhere() {
        let mut b = kimbap_graph::GraphBuilder::new();
        b.add_edge(0, 1, 1).ensure_nodes(10);
        let g = b.symmetric(true).build();
        let parts = partition(&g, Policy::EdgeCutBlocked, 3);
        let total: usize = parts.iter().map(|p| p.num_masters()).sum();
        assert_eq!(total, 10);
    }
}
