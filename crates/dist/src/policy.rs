//! Edge-assignment partitioning policies.

use crate::ownership::Ownership;
use kimbap_graph::NodeId;
use std::fmt;

/// How edges are assigned to hosts.
///
/// Node *ownership* (where the master proxy lives) is blocked for every
/// policy except [`Policy::EdgeCutHashed`]; policies differ in where each
/// directed edge `(u, v)` is stored:
///
/// * **Edge-cut (OEC)** — at `owner(u)`: every node's outgoing edges are on
///   one host, so mirrors have no outgoing edges (the structural invariant
///   Gluon's broadcast elision exploits).
/// * **Cartesian vertex-cut (CVC)** — hosts form a `pr x pc` grid; edge
///   `(u, v)` goes to the host at `(row(owner(u)), col(owner(v)))` (Boman
///   et al., the policy the paper uses for CC, MSF, and MIS).
///
/// # Example
///
/// ```
/// use kimbap_dist::Policy;
///
/// let p = Policy::CartesianVertexCut;
/// let own = p.ownership(100, 4); // 2x2 host grid
/// assert_eq!(p.assign(&own, 0, 99), 1); // row(owner 0)=0, col(owner 99)=1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Outgoing edge-cut with blocked node ownership.
    #[default]
    EdgeCutBlocked,
    /// Incoming edge-cut with blocked node ownership: edge `(u, v)` lives
    /// at `owner(v)`, so mirrors have no *incoming* edges (the structural
    /// invariant pull-style operators exploit).
    EdgeCutIncoming,
    /// Outgoing edge-cut with modulo-hashed node ownership (used by the
    /// SGR-only / memcached runtime variants).
    EdgeCutHashed,
    /// 2-D Cartesian vertex-cut with blocked node ownership.
    CartesianVertexCut,
}

impl Policy {
    /// The node-ownership map this policy uses for `n` nodes on `hosts`
    /// hosts.
    pub fn ownership(&self, n: usize, hosts: usize) -> Ownership {
        match self {
            Policy::EdgeCutBlocked | Policy::EdgeCutIncoming | Policy::CartesianVertexCut => {
                Ownership::blocked(n, hosts)
            }
            Policy::EdgeCutHashed => Ownership::hashed(n, hosts),
        }
    }

    /// Host grid `(rows, cols)` for the Cartesian vertex-cut: the most
    /// square factorization of `hosts` with `rows <= cols`.
    pub fn grid(hosts: usize) -> (usize, usize) {
        let mut r = (hosts as f64).sqrt() as usize;
        while r > 1 && !hosts.is_multiple_of(r) {
            r -= 1;
        }
        (r.max(1), hosts / r.max(1))
    }

    /// Host that stores directed edge `(u, v)`.
    ///
    /// When the ownership carries a hub table and this policy splits hubs
    /// (see [`Policy::splits_hubs`]), an out-edge of a hub `u` is stored at
    /// `owner(v)` instead of `owner(u)`: the hub's edge list is scattered
    /// across the hosts owning its neighbors (PowerLyra-style hybrid cut),
    /// so no single host holds a power-law hub's entire adjacency.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is outside the ownership range.
    pub fn assign(&self, own: &Ownership, u: NodeId, v: NodeId) -> usize {
        match self {
            Policy::EdgeCutBlocked | Policy::EdgeCutHashed => {
                if own.has_hubs() && own.is_hub(u) {
                    own.owner(v)
                } else {
                    own.owner(u)
                }
            }
            Policy::EdgeCutIncoming => own.owner(v),
            Policy::CartesianVertexCut => {
                let hosts = own.num_hosts();
                let (_, pc) = Policy::grid(hosts);
                let row = own.owner(u) / pc;
                let col = own.owner(v) % pc;
                row * pc + col
            }
        }
    }

    /// `true` for policies that honor the ownership's hub table in
    /// [`Policy::assign`]. The incoming edge-cut and the Cartesian
    /// vertex-cut already scatter high-degree adjacencies by construction
    /// and ignore hubs.
    pub fn splits_hubs(&self) -> bool {
        matches!(self, Policy::EdgeCutBlocked | Policy::EdgeCutHashed)
    }

    /// `true` for policies where mirrors never carry outgoing edges (the
    /// structural invariant used by broadcast elision for push-style
    /// operators). Holds only when no hub table is in play — a split hub's
    /// fragments are mirrors *with* out-edges.
    pub fn mirrors_have_no_out_edges(&self) -> bool {
        matches!(self, Policy::EdgeCutBlocked | Policy::EdgeCutHashed)
    }

    /// `true` for policies where mirrors never carry incoming edges (the
    /// dual invariant, for pull-style operators).
    pub fn mirrors_have_no_in_edges(&self) -> bool {
        matches!(self, Policy::EdgeCutIncoming)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Policy::EdgeCutBlocked => "edge-cut (blocked)",
            Policy::EdgeCutIncoming => "incoming edge-cut",
            Policy::EdgeCutHashed => "edge-cut (hashed)",
            Policy::CartesianVertexCut => "cartesian vertex-cut",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorizations() {
        assert_eq!(Policy::grid(1), (1, 1));
        assert_eq!(Policy::grid(4), (2, 2));
        assert_eq!(Policy::grid(8), (2, 4));
        assert_eq!(Policy::grid(16), (4, 4));
        assert_eq!(Policy::grid(7), (1, 7));
        assert_eq!(Policy::grid(12), (3, 4));
    }

    #[test]
    fn edge_cut_assigns_to_source_owner() {
        let p = Policy::EdgeCutBlocked;
        let own = p.ownership(8, 2);
        assert_eq!(p.assign(&own, 1, 7), 0);
        assert_eq!(p.assign(&own, 7, 1), 1);
    }

    #[test]
    fn incoming_edge_cut_assigns_to_dest_owner() {
        let p = Policy::EdgeCutIncoming;
        let own = p.ownership(8, 2);
        assert_eq!(p.assign(&own, 1, 7), 1);
        assert_eq!(p.assign(&own, 7, 1), 0);
        assert!(p.mirrors_have_no_in_edges());
        assert!(!p.mirrors_have_no_out_edges());
    }

    #[test]
    fn cvc_assigns_within_grid() {
        let p = Policy::CartesianVertexCut;
        let own = p.ownership(16, 4); // grid 2x2; blocks of 4
        for u in 0..16u32 {
            for v in 0..16u32 {
                let h = p.assign(&own, u, v);
                assert!(h < 4);
                // Host row must match source owner's row.
                assert_eq!(h / 2, own.owner(u) / 2);
                // Host col must match dest owner's col.
                assert_eq!(h % 2, own.owner(v) % 2);
            }
        }
    }

    #[test]
    fn cvc_on_one_host_is_trivial() {
        let p = Policy::CartesianVertexCut;
        let own = p.ownership(10, 1);
        assert_eq!(p.assign(&own, 3, 9), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Policy::EdgeCutBlocked.to_string(), "edge-cut (blocked)");
        assert_eq!(
            Policy::CartesianVertexCut.to_string(),
            "cartesian vertex-cut"
        );
    }
}
