//! The node → owning-host map.

use kimbap_graph::NodeId;
use std::sync::Arc;

/// The arithmetic half of an [`Ownership`]: how global ids map to hosts.
///
/// Both variants are pure arithmetic — no lookup tables — which is what lets
/// the node-property map locate any master property with one division
/// (the locality half of the paper's GAR optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Contiguous blocks of `ceil(n / hosts)` nodes per host.
    Blocked {
        /// Total node count.
        n: usize,
        /// Number of hosts.
        hosts: usize,
    },
    /// Node `g` is owned by host `g % hosts` (the distribution used by the
    /// memcached and SGR-only runtime variants, which hash keys instead of
    /// exploiting the partition).
    Hashed {
        /// Total node count.
        n: usize,
        /// Number of hosts.
        hosts: usize,
    },
}

/// Maps every global node id to the host that owns its master proxy, and to
/// a dense per-host *master offset*, plus an optional *hub table*: a sorted
/// list of high-degree nodes whose edge lists the partitioner splits across
/// hosts (PowerLyra-style hybrid cut) instead of concentrating on the
/// master's host.
///
/// The hub table does **not** change `owner`/`master_offset` arithmetic —
/// hubs keep their master where the scheme says — it only changes where
/// edges land (see `Policy::assign`). Cloning is cheap: the table is shared
/// behind an `Arc`.
///
/// # Example
///
/// ```
/// use kimbap_dist::Ownership;
///
/// let own = Ownership::blocked(10, 3); // hosts own [0,4) [4,8) [8,10)
/// assert_eq!(own.owner(5), 1);
/// assert_eq!(own.master_offset(5), 1);
/// assert_eq!(own.num_masters(2), 2);
/// assert_eq!(own.master_at(1, 1), 5);
/// assert!(!own.has_hubs());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ownership {
    scheme: Scheme,
    /// Sorted global ids of hub nodes; empty = no hub splitting.
    hubs: Arc<[NodeId]>,
}

impl Ownership {
    /// Blocked ownership over `n` nodes and `hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn blocked(n: usize, hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        Ownership {
            scheme: Scheme::Blocked { n, hosts },
            hubs: Arc::from([]),
        }
    }

    /// Modulo-hashed ownership over `n` nodes and `hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn hashed(n: usize, hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        Ownership {
            scheme: Scheme::Hashed { n, hosts },
            hubs: Arc::from([]),
        }
    }

    /// This ownership with `hubs` marked for edge-list splitting. The list
    /// is sorted and deduplicated here.
    ///
    /// # Panics
    ///
    /// Panics if any hub id is out of range.
    pub fn with_hubs(&self, mut hubs: Vec<NodeId>) -> Self {
        hubs.sort_unstable();
        hubs.dedup();
        if let Some(&last) = hubs.last() {
            assert!(
                (last as usize) < self.num_nodes(),
                "hub id {last} out of range"
            );
        }
        Ownership {
            scheme: self.scheme,
            hubs: hubs.into(),
        }
    }

    /// The arithmetic id→host scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// `true` if any node is marked as a hub.
    pub fn has_hubs(&self) -> bool {
        !self.hubs.is_empty()
    }

    /// The sorted hub table.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// `true` if `g` is in the hub table.
    pub fn is_hub(&self, g: NodeId) -> bool {
        self.hubs.binary_search(&g).is_ok()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        match self.scheme {
            Scheme::Blocked { n, .. } | Scheme::Hashed { n, .. } => n,
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        match self.scheme {
            Scheme::Blocked { hosts, .. } | Scheme::Hashed { hosts, .. } => hosts,
        }
    }

    fn block(&self) -> usize {
        match self.scheme {
            Scheme::Blocked { n, hosts } => n.div_ceil(hosts).max(1),
            Scheme::Hashed { .. } => unreachable!("hashed ownership has no block"),
        }
    }

    /// Host owning node `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn owner(&self, g: NodeId) -> usize {
        let g = g as usize;
        assert!(g < self.num_nodes(), "node {g} out of range");
        match self.scheme {
            Scheme::Blocked { .. } => g / self.block(),
            Scheme::Hashed { hosts, .. } => g % hosts,
        }
    }

    /// Dense index of `g` among its owner's masters (masters are ordered by
    /// global id on every host).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn master_offset(&self, g: NodeId) -> usize {
        let g = g as usize;
        assert!(g < self.num_nodes(), "node {g} out of range");
        match self.scheme {
            Scheme::Blocked { .. } => g % self.block(),
            Scheme::Hashed { hosts, .. } => g / hosts,
        }
    }

    /// Number of masters host `h` owns.
    ///
    /// # Panics
    ///
    /// Panics if `h >= num_hosts()`.
    pub fn num_masters(&self, h: usize) -> usize {
        assert!(h < self.num_hosts(), "host {h} out of range");
        match self.scheme {
            Scheme::Blocked { n, .. } => {
                let b = self.block();
                n.saturating_sub(h * b).min(b)
            }
            Scheme::Hashed { n, hosts } => {
                if h < n % hosts {
                    n / hosts + 1
                } else {
                    n / hosts
                }
            }
        }
    }

    /// Global id of host `h`'s `i`-th master (inverse of
    /// [`Ownership::master_offset`]).
    ///
    /// # Panics
    ///
    /// Panics if `h` or `i` is out of range.
    pub fn master_at(&self, h: usize, i: usize) -> NodeId {
        assert!(i < self.num_masters(h), "master index {i} out of range");
        match self.scheme {
            Scheme::Blocked { .. } => (h * self.block() + i) as NodeId,
            Scheme::Hashed { hosts, .. } => (i * hosts + h) as NodeId,
        }
    }

    /// Iterates the global ids of host `h`'s masters in ascending order.
    pub fn masters(&self, h: usize) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_masters(h)).map(move |i| self.master_at(h, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_consistency(own: Ownership) {
        let n = own.num_nodes();
        let hosts = own.num_hosts();
        // Every node is owned by exactly one host, offsets are dense.
        let mut total = 0;
        for h in 0..hosts {
            let masters: Vec<_> = own.masters(h).collect();
            assert_eq!(masters.len(), own.num_masters(h));
            assert!(masters.windows(2).all(|w| w[0] < w[1]), "sorted");
            for (i, &g) in masters.iter().enumerate() {
                assert_eq!(own.owner(g), h);
                assert_eq!(own.master_offset(g), i);
                assert_eq!(own.master_at(h, i), g);
            }
            total += masters.len();
        }
        assert_eq!(total, n);
    }

    #[test]
    fn blocked_consistent() {
        for (n, h) in [(10, 3), (10, 1), (1, 4), (16, 4), (7, 8), (0, 2)] {
            check_consistency(Ownership::blocked(n, h));
        }
    }

    #[test]
    fn hashed_consistent() {
        for (n, h) in [(10, 3), (10, 1), (1, 4), (16, 4), (7, 8), (0, 2)] {
            check_consistency(Ownership::hashed(n, h));
        }
    }

    #[test]
    fn blocked_is_contiguous() {
        let own = Ownership::blocked(10, 3);
        assert_eq!(own.masters(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(own.masters(2).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn hashed_strides() {
        let own = Ownership::hashed(10, 3);
        assert_eq!(own.masters(1).collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    fn hub_table_is_sorted_and_queryable() {
        let own = Ownership::blocked(10, 3).with_hubs(vec![7, 2, 7]);
        assert!(own.has_hubs());
        assert_eq!(own.hubs(), &[2, 7]);
        assert!(own.is_hub(2));
        assert!(own.is_hub(7));
        assert!(!own.is_hub(3));
        // Masters/offsets are untouched by the hub table.
        assert_eq!(own.owner(7), Ownership::blocked(10, 3).owner(7));
        assert_eq!(own.master_offset(7), Ownership::blocked(10, 3).master_offset(7));
    }

    #[test]
    #[should_panic(expected = "hub id 10 out of range")]
    fn hub_out_of_range_panics() {
        Ownership::blocked(10, 3).with_hubs(vec![10]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range() {
        Ownership::blocked(5, 2).owner(5);
    }
}
