//! A Gluon-style adjacent-vertex framework (§2.2) and its CC-LP.
//!
//! Gluon keeps *all* proxies (masters and mirrors) materialized in dense
//! per-host arrays; operators read and reduce cached values directly with
//! atomics during compute. Communication synchronizes only values that
//! changed (the temporal invariant): reduce-sync ships changed mirror
//! values to masters, broadcast-sync ships changed master values back to
//! mirrors. There are no request phases — which is exactly why the model
//! is limited to adjacent-vertex operators.

use kimbap_comm::wire::{encode_slice, iter_decoded};
use kimbap_comm::HostCtx;
use kimbap_dist::{DistGraph, LocalId};
use kimbap_graph::NodeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A dense, min-reduced node property over one host's proxies.
///
/// Values are indexed by *local* proxy id; mirrors cache the master value
/// and accumulate partial minima between syncs.
#[derive(Debug)]
pub struct GluonMinProp<'g> {
    dg: &'g DistGraph,
    vals: Vec<AtomicU64>,
    changed: Vec<AtomicBool>,
    any_master_changed: AtomicBool,
}

impl<'g> GluonMinProp<'g> {
    /// Creates the property with `init(global_id)` per proxy.
    pub fn new(dg: &'g DistGraph, init: impl Fn(NodeId) -> u64) -> Self {
        let vals = dg
            .local_nodes()
            .map(|l| AtomicU64::new(init(dg.local_to_global(l))))
            .collect();
        let changed = dg.local_nodes().map(|_| AtomicBool::new(false)).collect();
        GluonMinProp {
            dg,
            vals,
            changed,
            any_master_changed: AtomicBool::new(false),
        }
    }

    /// Reads the cached value of local proxy `l`.
    pub fn read(&self, l: LocalId) -> u64 {
        self.vals[l as usize].load(Ordering::Relaxed)
    }

    /// Min-reduces `v` into local proxy `l` (atomic, called from compute).
    pub fn min_reduce(&self, l: LocalId, v: u64) {
        let old = self.vals[l as usize].fetch_min(v, Ordering::Relaxed);
        if v < old {
            self.changed[l as usize].store(true, Ordering::Relaxed);
            if self.dg.is_master(l) {
                self.any_master_changed.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Clears per-round change tracking.
    pub fn reset_round(&mut self) {
        for c in self.changed.iter_mut() {
            *c.get_mut() = false;
        }
        *self.any_master_changed.get_mut() = false;
    }

    /// Reduce-sync: changed mirror values are shipped to their masters and
    /// min-combined there. Collective.
    pub fn reduce_sync(&mut self, ctx: &HostCtx) {
        let own = self.dg.ownership().clone();
        let outgoing: Vec<Vec<u8>> = (0..ctx.num_hosts())
            .map(|peer| {
                if peer == ctx.host() {
                    return Vec::new();
                }
                let mut pairs = Vec::new();
                for l in self.dg.mirror_nodes() {
                    let g = self.dg.local_to_global(l);
                    if own.owner(g) == peer && *self.changed[l as usize].get_mut() {
                        pairs.push((g, *self.vals[l as usize].get_mut()));
                    }
                }
                encode_slice(&pairs)
            })
            .collect();
        let received = ctx.exchange(outgoing);
        for buf in &received {
            for (g, v) in iter_decoded::<(NodeId, u64)>(buf) {
                let l = self
                    .dg
                    .global_to_local(g)
                    .expect("received value for unowned node") as usize;
                let slot = self.vals[l].get_mut();
                if v < *slot {
                    *slot = v;
                    *self.changed[l].get_mut() = true;
                    *self.any_master_changed.get_mut() = true;
                }
            }
        }
    }

    /// Broadcast-sync: changed master values are pushed to their mirrors.
    /// Collective.
    pub fn broadcast_sync(&mut self, ctx: &HostCtx) {
        let outgoing: Vec<Vec<u8>> = (0..ctx.num_hosts())
            .map(|peer| {
                if peer == ctx.host() {
                    return Vec::new();
                }
                let mut pairs = Vec::new();
                for &g in self.dg.mirrors_on_peer(peer) {
                    let l = self.dg.global_to_local(g).unwrap() as usize;
                    if *self.changed[l].get_mut() {
                        pairs.push((g, *self.vals[l].get_mut()));
                    }
                }
                encode_slice(&pairs)
            })
            .collect();
        let received = ctx.exchange(outgoing);
        for buf in &received {
            for (g, v) in iter_decoded::<(NodeId, u64)>(buf) {
                let l = self.dg.global_to_local(g).expect("mirror exists") as usize;
                *self.vals[l].get_mut() = v;
            }
        }
    }

    /// Collective quiescence check: did any master value change this round?
    pub fn is_updated(&self, ctx: &HostCtx) -> bool {
        ctx.all_reduce_or(self.any_master_changed.load(Ordering::Relaxed))
    }
}

/// Gluon-style push CC-LP: atomically min-propagate labels to neighbor
/// proxies, then reduce/broadcast changed values. Returns this host's
/// master labels. Collective.
pub fn cc_lp(dg: &DistGraph, ctx: &HostCtx) -> Vec<(NodeId, u64)> {
    let mut label = GluonMinProp::new(dg, |g| g as u64);
    loop {
        label.reset_round();
        {
            let l = &label;
            ctx.par_for(0..dg.num_local_nodes(), |_tid, range| {
                for lid in range {
                    let lid = lid as LocalId;
                    if dg.degree(lid) == 0 {
                        continue;
                    }
                    let my = l.read(lid);
                    for (dst, _) in dg.edges(lid) {
                        if my < l.read(dst) {
                            l.min_reduce(dst, my);
                        }
                    }
                }
            });
        }
        label.reduce_sync(ctx);
        label.broadcast_sync(ctx);
        if !label.is_updated(ctx) {
            break;
        }
    }
    dg.master_nodes()
        .map(|l| (dg.local_to_global(l), label.read(l)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_algos::{merge_master_values, refcheck};
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::gen;

    fn run(g: &kimbap_graph::Graph, hosts: usize, threads: usize, policy: Policy) -> Vec<u64> {
        let parts = partition(g, policy, hosts);
        let per_host = Cluster::with_threads(hosts, threads)
            .run(|ctx| cc_lp(&parts[ctx.host()], ctx));
        merge_master_values(g.num_nodes(), per_host)
    }

    #[test]
    fn matches_reference_on_grid() {
        let g = gen::grid_road(7, 7, 3);
        assert_eq!(
            run(&g, 3, 2, Policy::EdgeCutBlocked),
            refcheck::connected_components(&g)
        );
    }

    #[test]
    fn matches_reference_on_power_law_cvc() {
        let g = gen::rmat(8, 4, 11);
        assert_eq!(
            run(&g, 4, 2, Policy::CartesianVertexCut),
            refcheck::connected_components(&g)
        );
    }

    #[test]
    fn agrees_with_kimbap_cc_lp() {
        let g = gen::rmat(7, 3, 23);
        let gluon = run(&g, 3, 1, Policy::CartesianVertexCut);
        let parts = partition(&g, Policy::CartesianVertexCut, 3);
        let b = kimbap_algos::NpmBuilder::default();
        let kimbap = merge_master_values(
            g.num_nodes(),
            Cluster::new(3).run(|ctx| kimbap_algos::cc::cc_lp(&parts[ctx.host()], ctx, &b)),
        );
        assert_eq!(gluon, kimbap);
    }

    #[test]
    fn sends_only_changed_values() {
        // After convergence, one extra round must move almost nothing.
        let g = gen::grid_road(5, 5, 0);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let bytes = Cluster::new(2).run(|ctx| {
            let dg = &parts[ctx.host()];
            let mut label = GluonMinProp::new(dg, |g| g as u64);
            // Run to convergence.
            loop {
                label.reset_round();
                // no compute: nothing changes
                label.reduce_sync(ctx);
                label.broadcast_sync(ctx);
                if !label.is_updated(ctx) {
                    break;
                }
            }
            ctx.stats().bytes
        });
        // The only traffic is the 1-byte quiescence all-reduce per peer.
        assert!(
            bytes.iter().all(|&b| b <= 1),
            "idle rounds must carry no property data, got {bytes:?}"
        );
    }
}
