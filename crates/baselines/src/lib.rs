//! Comparison systems from the paper's evaluation (§6).
//!
//! * [`mckv`] — a memcached-like distributed in-memory key-value store
//!   (string keys, versioned compare-and-swap, per-operation requests) and
//!   [`mckv::McBuilder`], which lets the unchanged Kimbap algorithms run on
//!   it — the *MC* bars of Fig. 11.
//! * [`vite`] — Vite-style hand-optimized distributed Louvain: SGR
//!   batching, but a single-threaded inspection phase building a shared
//!   map that all threads then update with contended atomic reductions
//!   (§6.2, §6.4).
//! * [`gluon`] — a Gluon-style adjacent-vertex framework: dense
//!   master+mirror property arrays updated with atomics during compute,
//!   reduce/broadcast synchronization of changed values only (§2.2), and
//!   its CC-LP used in Figs. 9c/10c.
//! * [`galois`] — Galois-style shared-memory (single-host) algorithms
//!   using asynchronous atomic updates, the Table 3 comparison.

pub mod galois;
pub mod gluon;
pub mod mckv;
pub mod vite;
