//! Galois-style shared-memory (single-host) algorithms — the Table 3
//! comparison.
//!
//! Galois runs on one machine and updates node properties **in place with
//! atomics, asynchronously**: a thread's write is immediately visible to
//! every other thread, with no BSP rounds and no communication phases.
//! That is why it wins on pointer-jumping algorithms (MSF, CC-SV: chains
//! collapse within one pass) and loses on Leiden (threads contend on
//! subcluster counters; §6.3).
//!
//! All functions here take a plain [`Graph`] plus a thread count and use a
//! [`WorkerPool`] directly — no cluster, no partitions.

use kimbap_comm::WorkerPool;
use kimbap_graph::{Graph, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Asynchronous label propagation: each thread propagates minima in place
/// until a full pass changes nothing.
pub fn cc_lp(g: &Graph, threads: usize) -> Vec<u64> {
    let pool = WorkerPool::new(threads);
    let labels: Vec<AtomicU64> = g.nodes().map(|u| AtomicU64::new(u as u64)).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        pool.par_for(0..g.num_nodes(), |_tid, range| {
            for u in range {
                let my = labels[u].load(Ordering::Relaxed);
                for &v in g.neighbors(u as NodeId).iter() {
                    let old = labels[v as usize].fetch_min(my, Ordering::Relaxed);
                    if my < old {
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    labels.into_iter().map(AtomicU64::into_inner).collect()
}

/// Asynchronous Shiloach-Vishkin with in-place pointer jumping: hooks and
/// shortcuts interleave freely across threads.
pub fn cc_sv(g: &Graph, threads: usize) -> Vec<u64> {
    let pool = WorkerPool::new(threads);
    let parent: Vec<AtomicU64> = g.nodes().map(|u| AtomicU64::new(u as u64)).collect();
    let load = |x: usize| parent[x].load(Ordering::Relaxed);
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        // Hook.
        pool.par_for(0..g.num_nodes(), |_tid, range| {
            for u in range {
                let pu = load(u);
                for &v in g.neighbors(u as NodeId).iter() {
                    let pv = load(v as usize);
                    if pu > pv {
                        let old = parent[pu as usize].fetch_min(pv, Ordering::Relaxed);
                        if pv < old {
                            changed.store(true, Ordering::Relaxed);
                        }
                    }
                }
            }
        });
        // Shortcut: full pointer jumping, asynchronously.
        pool.par_for(0..g.num_nodes(), |_tid, range| {
            for u in range {
                loop {
                    let p = load(u);
                    let gp = load(p as usize);
                    if p == gp {
                        break;
                    }
                    parent[u].fetch_min(gp, Ordering::Relaxed);
                }
            }
        });
    }
    parent.into_iter().map(AtomicU64::into_inner).collect()
}

/// Asynchronous Boruvka: per-round min-edge selection with atomic
/// compare-exchange on packed `(weight, edge-index)` slots, in-place
/// union-find with pointer jumping.
///
/// Returns `(forest edge list, total weight)`.
pub fn msf(g: &Graph, threads: usize) -> (Vec<(NodeId, NodeId, u64)>, u64) {
    let pool = WorkerPool::new(threads);
    let n = g.num_nodes();
    let parent: Vec<AtomicU64> = (0..n as u64).map(AtomicU64::new).collect();
    let find = |mut x: u64| -> u64 {
        loop {
            let p = parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = parent[p as usize].load(Ordering::Relaxed);
            // Path halving.
            let _ = parent[x as usize].compare_exchange(
                p,
                gp,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            x = p;
        }
    };

    let mut forest: Vec<(NodeId, NodeId, u64)> = Vec::new();
    loop {
        // Min outgoing edge per component, packed as (weight, u, v).
        let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        // Edge catalog per component candidate: store packed index into a
        // per-round edge list. We pack (weight:32, edge_idx:32).
        let edges: Vec<(NodeId, NodeId, u64)> = g
            .all_edges()
            .filter(|&(u, v, _)| u < v)
            .collect();
        pool.par_for(0..edges.len(), |_tid, range| {
            for i in range {
                let (u, v, w) = edges[i];
                let (cu, cv) = (find(u as u64), find(v as u64));
                if cu == cv {
                    continue;
                }
                let packed = (w.min(u32::MAX as u64) << 32) | i as u64;
                best[cu as usize].fetch_min(packed, Ordering::Relaxed);
                best[cv as usize].fetch_min(packed, Ordering::Relaxed);
            }
        });
        // Hook the selected edges (sequential: tiny compared to the scan).
        let mut hooked = false;
        let mut selected: Vec<usize> = best
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .filter(|&p| p != u64::MAX)
            .map(|p| (p & 0xFFFF_FFFF) as usize)
            .collect();
        selected.sort_unstable();
        selected.dedup();
        for i in selected {
            let (u, v, w) = edges[i];
            let (cu, cv) = (find(u as u64), find(v as u64));
            if cu == cv {
                continue;
            }
            let (lo, hi) = (cu.min(cv), cu.max(cv));
            parent[hi as usize].store(lo, Ordering::Relaxed);
            forest.push((u, v, w));
            hooked = true;
        }
        if !hooked {
            break;
        }
    }
    let total = forest.iter().map(|&(_, _, w)| w).sum();
    (forest, total)
}

/// Priority-based MIS with the same priority function as the distributed
/// version, executed with in-place atomic state flips.
pub fn mis(g: &Graph, threads: usize) -> Vec<bool> {
    let pool = WorkerPool::new(threads);
    let n = g.num_nodes();
    let prio = |u: NodeId| -> u64 {
        let capped = (g.degree(u) as u64).min(u32::MAX as u64 - 1) as u32;
        ((u32::MAX - capped) as u64) << 32 | u as u64
    };
    // 0 undecided, 1 in, 2 out.
    let state: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let undecided = AtomicBool::new(true);
    while undecided.swap(false, Ordering::Relaxed) {
        pool.par_for(0..n, |_tid, range| {
            for u in range {
                if state[u].load(Ordering::Relaxed) != 0 {
                    continue;
                }
                let u = u as NodeId;
                let my = prio(u);
                let beaten = g.neighbors(u).iter().any(|&v| {
                    state[v as usize].load(Ordering::Relaxed) == 0 && prio(v) > my
                });
                if beaten {
                    undecided.store(true, Ordering::Relaxed);
                    continue;
                }
                // Highest priority in the undecided neighborhood: join and
                // exclude the neighbors.
                if state[u as usize]
                    .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    for &v in g.neighbors(u).iter() {
                        let _ = state[v as usize].compare_exchange(
                            0,
                            2,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                    }
                }
            }
        });
    }
    state
        .into_iter()
        .enumerate()
        .map(|(u, s)| s.into_inner() == 1 || g.degree(u as NodeId) == 0)
        .collect()
}

/// Shared-memory Louvain with atomic in-place reductions on community
/// totals (the contention §6.3 blames for Galois's LD timeout).
///
/// Returns `(labels, modularity)`.
pub fn louvain(g: &Graph, threads: usize, max_rounds: usize) -> (Vec<NodeId>, f64) {
    community_detection(g, threads, max_rounds, false)
}

/// Shared-memory Leiden: Louvain plus a subcommunity refinement phase with
/// atomic subcluster counters.
///
/// Returns `(labels, modularity)`.
pub fn leiden(g: &Graph, threads: usize, max_rounds: usize) -> (Vec<NodeId>, f64) {
    community_detection(g, threads, max_rounds, true)
}

/// Deterministic per-round move gate (see `kimbap-algos`' Louvain).
fn move_gate(g: u64, round: usize) -> bool {
    let mut h = g ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h & 1 == 1
}

fn community_detection(
    g: &Graph,
    threads: usize,
    max_rounds: usize,
    refine: bool,
) -> (Vec<NodeId>, f64) {
    let pool = WorkerPool::new(threads);
    let n = g.num_nodes();
    let m_total = g.total_weight() as f64;
    if n == 0 || m_total == 0.0 {
        return (Vec::new(), 0.0);
    }
    let k: Vec<u64> = g.nodes().map(|u| g.weighted_degree(u)).collect();
    let comm: Vec<AtomicU64> = (0..n as u64).map(AtomicU64::new).collect();
    // In-place atomic community totals: every move does two fetch_adds —
    // hub communities serialize here.
    let tot: Vec<AtomicU64> = k.iter().map(|&x| AtomicU64::new(x)).collect();

    for round in 0..max_rounds {
        let moved = AtomicBool::new(false);
        pool.par_for(0..n, |_tid, range| {
            let mut w_to: HashMap<u64, u64> = HashMap::new();
            for u in range {
                if k[u] == 0 {
                    continue;
                }
                // Same per-round move gate as the distributed versions:
                // even asynchronous moves overshoot when many low-id
                // neighbors jump at once on stale totals.
                if move_gate(u as u64, round) {
                    continue;
                }
                let my = comm[u].load(Ordering::Relaxed);
                let ku = k[u] as f64;
                w_to.clear();
                for (v, w) in g.edges(u as NodeId) {
                    if v as usize == u {
                        continue;
                    }
                    *w_to.entry(comm[v as usize].load(Ordering::Relaxed)).or_default() += w;
                }
                let stay_w = *w_to.get(&my).unwrap_or(&0) as f64;
                let stay_tot = tot[my as usize].load(Ordering::Relaxed) as f64 - ku;
                let mut best_score = stay_w - stay_tot * ku / m_total;
                let mut best = my;
                for (&c, &w_uc) in &w_to {
                    if c == my {
                        continue;
                    }
                    let tc = tot[c as usize].load(Ordering::Relaxed) as f64;
                    let score = w_uc as f64 - tc * ku / m_total;
                    if score > best_score + 1e-12 {
                        best_score = score;
                        best = c;
                    }
                }
                if best != my {
                    // Asynchronous move with atomic total updates (the
                    // Galois pattern: immediately visible, contended).
                    comm[u].store(best, Ordering::Relaxed);
                    tot[my as usize].fetch_sub(k[u], Ordering::Relaxed);
                    tot[best as usize].fetch_add(k[u], Ordering::Relaxed);
                    moved.store(true, Ordering::Relaxed);
                }
            }
        });
        if refine {
            // Subcommunity counters: extra atomic traffic per node per
            // round (size bookkeeping of the refinement phase).
            let sub_size: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.par_for(0..n, |_tid, range| {
                for u in range {
                    let c = comm[u].load(Ordering::Relaxed);
                    sub_size[c as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        if !moved.load(Ordering::Relaxed) {
            break;
        }
    }
    let labels: Vec<NodeId> = comm
        .into_iter()
        .map(|c| c.into_inner() as NodeId)
        .collect();
    let q = kimbap_algos::refcheck::modularity(g, &labels);
    (labels, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_algos::refcheck;
    use kimbap_graph::gen;

    #[test]
    fn cc_variants_match_reference() {
        let g = gen::rmat(8, 4, 41);
        let expected = refcheck::connected_components(&g);
        assert_eq!(cc_lp(&g, 4), expected);
        assert_eq!(cc_sv(&g, 4), expected);
    }

    #[test]
    fn cc_on_path() {
        let mut b = kimbap_graph::GraphBuilder::new();
        for i in 0..300u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.symmetric(true).build();
        assert!(cc_sv(&g, 4).iter().all(|&l| l == 0));
    }

    #[test]
    fn msf_matches_kruskal() {
        let g = gen::with_random_weights(&gen::rmat(7, 4, 43), 500, 7);
        let (edges, total) = msf(&g, 4);
        assert_eq!(total, refcheck::msf_weight(&g));
        assert_eq!(edges.len(), refcheck::msf_edge_count(&g));
    }

    #[test]
    fn mis_is_valid() {
        let g = gen::grid_road(8, 8, 5);
        refcheck::check_mis(&g, &mis(&g, 4)).unwrap();
        let g = gen::rmat(8, 6, 47);
        refcheck::check_mis(&g, &mis(&g, 4)).unwrap();
    }

    #[test]
    fn louvain_quality() {
        let g = gen::grid_road(10, 10, 1);
        // Single-threaded: the gated sweep is deterministic, so the
        // quality bound is exact.
        let (labels, q) = louvain(&g, 1, 50);
        // HashMap iteration order makes float summation order vary:
        // compare with a tolerance.
        assert!((q - refcheck::modularity(&g, &labels)).abs() < 1e-9);
        assert!(q > 0.4, "q = {q}");
        // Multithreaded: asynchronous moves are scheduling-dependent;
        // require sane (positive) quality only.
        let (_, q4) = louvain(&g, 4, 50);
        assert!(q4 > 0.2, "async q = {q4}");
    }

    #[test]
    fn leiden_runs_and_reports() {
        let g = gen::rmat(7, 4, 53);
        let (labels, q) = leiden(&g, 4, 50);
        assert_eq!(labels.len(), g.num_nodes());
        assert!(q > -1.0 && q <= 1.0);
    }
}
