//! Vite-style hand-optimized distributed Louvain (Ghosh et al., IPDPS'18)
//! — the baseline of Figs. 9a/10a/11.
//!
//! Vite is hand-written MPI+OpenMP code. The paper attributes its gap to
//! Kimbap to two implementation choices, both reproduced here:
//!
//! 1. **single-threaded inspection**: after communication, *one* thread
//!    walks the local graph to build the shared community map;
//! 2. **contended atomic reductions**: all threads then reduce community
//!    totals into that single shared map with atomic adds — on power-law
//!    graphs many threads hit the same hub communities (§6.4: "Vite is 3×
//!    slower than SGR-only primarily because it uses a single thread to
//!    construct a local, shared map").
//!
//! Vite also ships whole ghost-community updates every round (no
//! temporal-invariant filtering) and supports the probabilistic *early
//! termination* heuristic (§6.2): a node stable for 4 consecutive rounds
//! is skipped with 75% probability (deterministic hash here).

use kimbap_comm::wire::{encode_slice, iter_decoded};
use kimbap_comm::HostCtx;
use kimbap_dist::{assemble_dist_graph, DistGraph, Policy};
use kimbap_graph::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Configuration for the Vite baseline.
#[derive(Debug, Clone, Copy)]
pub struct ViteConfig {
    /// Maximum coarsening levels.
    pub max_levels: usize,
    /// Maximum move rounds per level.
    pub max_rounds: usize,
    /// Stop refining once fewer than this fraction of nodes moved.
    pub min_move_fraction: f64,
    /// Enable the probabilistic early-termination heuristic.
    pub early_termination: bool,
}

impl Default for ViteConfig {
    fn default() -> Self {
        ViteConfig {
            max_levels: 12,
            max_rounds: 48,
            min_move_fraction: 0.005,
            early_termination: true,
        }
    }
}

/// Per-host result of the Vite baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViteResult {
    /// Modularity of the final partition.
    pub modularity: f64,
    /// Levels executed.
    pub levels: usize,
    /// Final coarse node count.
    pub final_nodes: usize,
}

fn splitmix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Same per-round move gate as the Kimbap Louvain (both are synchronous
/// BSP formulations and need the same overshoot damping).
fn move_gate(g: u64, round: usize) -> bool {
    splitmix(g ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) & 1 == 1
}

/// Runs Vite-style Louvain; returns the final modularity (identical on
/// every host). Collective.
pub fn louvain(dg: &DistGraph, ctx: &HostCtx, cfg: &ViteConfig) -> ViteResult {
    let local_w: u64 = dg
        .local_nodes()
        .map(|l| dg.weighted_degree(l))
        .sum();
    let m_total = ctx.all_reduce_u64(local_w, |a, b| a + b) as f64;

    let mut result = ViteResult {
        modularity: 0.0,
        levels: 0,
        final_nodes: dg.num_global_nodes(),
    };
    let mut owned: Option<DistGraph> = None;
    for _level in 0..cfg.max_levels {
        let (q, improved, coarse_edges, n_coarse) = {
            let cur = owned.as_ref().unwrap_or(dg);
            run_level(cur, ctx, cfg, m_total)
        };
        result.modularity = q;
        result.levels += 1;
        let prev = result.final_nodes;
        result.final_nodes = n_coarse;
        let next = assemble_dist_graph(ctx, n_coarse, Policy::EdgeCutBlocked, coarse_edges);
        owned = Some(next);
        if !improved || n_coarse >= prev || n_coarse <= 1 {
            break;
        }
    }
    result
}

/// Ships `(key, value)` pairs per destination host and returns everything
/// received, flattened.
fn exchange_pairs(ctx: &HostCtx, outgoing: Vec<Vec<(u64, i64)>>) -> Vec<(u64, i64)> {
    let bufs = outgoing
        .into_iter()
        .map(|pairs| encode_slice(&pairs))
        .collect();
    ctx.exchange(bufs)
        .iter()
        .flat_map(|b| iter_decoded::<(u64, i64)>(b).collect::<Vec<_>>())
        .collect()
}

#[allow(clippy::type_complexity)]
fn run_level(
    cur: &DistGraph,
    ctx: &HostCtx,
    cfg: &ViteConfig,
    m_total: f64,
) -> (f64, bool, Vec<(NodeId, NodeId, u64)>, usize) {
    let masters = cur.num_masters();
    let num_local = cur.num_local_nodes();
    let own = cur.ownership().clone();
    let hosts = ctx.num_hosts();
    let k: Vec<u64> = (0..masters as u32).map(|m| cur.weighted_degree(m)).collect();

    // Community of every local proxy (mirrors refreshed every round).
    let mut comm_local: Vec<u64> = (0..num_local as u32)
        .map(|l| cur.local_to_global(l) as u64)
        .collect();
    let mut stable = vec![0u8; masters];
    let mut any_move = false;

    for round in 0..cfg.max_rounds {
        // --- Inspection phase (§6.4): ONE thread walks the local graph
        // and constructs the single shared map — an O(E) serial pass that
        // is Vite's main bottleneck on big graphs. ------------------------
        let mut shared: HashMap<u64, AtomicI64> = HashMap::new();
        for m in 0..masters {
            shared.entry(comm_local[m]).or_insert_with(|| AtomicI64::new(0));
            for (dst, _) in cur.edges(m as u32) {
                shared
                    .entry(comm_local[dst as usize])
                    .or_insert_with(|| AtomicI64::new(0));
            }
        }

        // --- Execution phase: all threads concurrently perform atomic
        // reductions on the shared map (hub communities contend). ---------
        {
            let shared = &shared;
            let cl = &comm_local;
            let kk = &k;
            ctx.par_for(0..masters, |_tid, range| {
                for m in range {
                    if kk[m] > 0 {
                        shared[&cl[m]].fetch_add(kk[m] as i64, Ordering::Relaxed);
                    }
                }
            });
        }

        // --- Ship per-community partials to their owners, reduce there
        // (again through a shared map with atomic adds). ------------------
        let mut contrib: Vec<Vec<(u64, i64)>> = vec![Vec::new(); hosts];
        for (&c, v) in &shared {
            let t = v.load(Ordering::Relaxed);
            if t != 0 {
                contrib[own.owner(c as NodeId)].push((c, t));
            }
        }
        let received = exchange_pairs(ctx, contrib);
        let mut shared: HashMap<u64, AtomicI64> = HashMap::new();
        for &(c, _) in &received {
            shared.entry(c).or_insert_with(|| AtomicI64::new(0));
        }
        {
            let shared = &shared;
            let received = &received;
            ctx.par_for(0..received.len(), |_tid, range| {
                for i in range {
                    let (c, kk) = received[i];
                    shared[&c].fetch_add(kk, Ordering::Relaxed);
                }
            });
        }

        // --- Which community totals does this host need back? ------------
        let mut needed: Vec<u64> = comm_local.clone();
        needed.sort_unstable();
        needed.dedup();
        let mut asks: Vec<Vec<(u64, i64)>> = vec![Vec::new(); hosts];
        for &c in &needed {
            asks[own.owner(c as NodeId)].push((c, 0));
        }
        // Two-step ask/answer.
        let asked = {
            let bufs = asks
                .iter()
                .map(|pairs| encode_slice(&pairs.iter().map(|&(c, _)| c).collect::<Vec<u64>>()))
                .collect();
            ctx.exchange(bufs)
        };
        let answers: Vec<Vec<u8>> = asked
            .iter()
            .map(|buf| {
                let mut out = Vec::new();
                for c in iter_decoded::<u64>(buf) {
                    let tot = shared.get(&c).map(|a| a.load(Ordering::Relaxed)).unwrap_or(0);
                    (c, tot).write_to(&mut out);
                }
                out
            })
            .collect();
        let answered = ctx.exchange(answers);
        // Single-threaded: build the local tot map.
        let mut tot: HashMap<u64, i64> = HashMap::new();
        for (h, buf) in answered.iter().enumerate() {
            let _ = h;
            for (c, t) in iter_decoded::<(u64, i64)>(buf) {
                tot.insert(c, t);
            }
        }
        for pairs in asks.iter().enumerate().filter(|&(h, _)| h == ctx.host()).map(|(_, p)| p) {
            for &(c, _) in pairs {
                let t = shared.get(&c).map(|a| a.load(Ordering::Relaxed)).unwrap_or(0);
                tot.insert(c, t);
            }
        }

        // --- Parallel move decisions. -----------------------------------
        let moves = AtomicU64::new(0);
        let decisions: Vec<parking_lot::Mutex<Vec<(usize, u64)>>> =
            (0..ctx.threads()).map(|_| parking_lot::Mutex::new(Vec::new())).collect();
        {
            let (tot, cl, kk, stable) = (&tot, &comm_local, &k, &stable);
            let decisions = &decisions;
            let moves = &moves;
            ctx.par_for(0..masters, |tid, range| {
                let mut w_to: HashMap<u64, u64> = HashMap::new();
                for m in range {
                    let lid = m as u32;
                    if cur.degree(lid) == 0 || kk[m] == 0 {
                        continue;
                    }
                    let g = cur.local_to_global(lid) as u64;
                    if move_gate(g, round) {
                        continue;
                    }
                    // Early termination: stable nodes skipped with 75%
                    // probability.
                    if cfg.early_termination
                        && stable[m] >= 4
                        && !splitmix(g ^ (round as u64) << 8).is_multiple_of(4)
                    {
                        continue;
                    }
                    let my_comm = cl[m];
                    let ku = kk[m] as f64;
                    w_to.clear();
                    for (dst, w) in cur.edges(lid) {
                        if dst == lid {
                            continue;
                        }
                        *w_to.entry(cl[dst as usize]).or_default() += w;
                    }
                    let stay_w = *w_to.get(&my_comm).unwrap_or(&0) as f64;
                    let stay_tot = (tot.get(&my_comm).copied().unwrap_or(0) - kk[m] as i64) as f64;
                    let mut best_score = stay_w - stay_tot * ku / m_total;
                    let mut best_comm = my_comm;
                    for (&c, &w_uc) in w_to.iter() {
                        if c == my_comm {
                            continue;
                        }
                        let tc = tot.get(&c).copied().unwrap_or(0) as f64;
                        let score = w_uc as f64 - tc * ku / m_total;
                        let eps = 1e-12;
                        if score > best_score + eps || (score > best_score - eps && c < best_comm)
                        {
                            best_score = score;
                            best_comm = c;
                        }
                    }
                    if best_comm != my_comm {
                        decisions[tid].lock().push((m, best_comm));
                        moves.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let mut moved_here = vec![false; masters];
        for d in decisions {
            for (m, c) in d.into_inner() {
                comm_local[m] = c;
                moved_here[m] = true;
                any_move = true;
            }
        }
        for m in 0..masters {
            stable[m] = if moved_here[m] { 0 } else { stable[m].saturating_add(1) };
        }

        // --- Ghost update: ship ALL mirror communities (no
        // changed-only filtering — the hand-written code resends). --------
        let outgoing: Vec<Vec<u8>> = (0..hosts)
            .map(|peer| {
                if peer == ctx.host() {
                    return Vec::new();
                }
                let pairs: Vec<(u64, i64)> = cur
                    .mirrors_on_peer(peer)
                    .iter()
                    .map(|&g| {
                        let l = cur.global_to_local(g).unwrap() as usize;
                        (g as u64, comm_local[l] as i64)
                    })
                    .collect();
                encode_slice(&pairs)
            })
            .collect();
        let received = ctx.exchange(outgoing);
        for buf in &received {
            for (g, c) in iter_decoded::<(u64, i64)>(buf) {
                if let Some(l) = cur.global_to_local(g as NodeId) {
                    comm_local[l as usize] = c as u64;
                }
            }
        }

        let total_moves = ctx.all_reduce_u64(moves.load(Ordering::Relaxed), |a, b| a + b);
        if (total_moves as f64) < cfg.min_move_fraction * cur.num_global_nodes() as f64 {
            break;
        }
    }

    // --- Modularity: per-community internal weight and totals at owners.
    let mut in_contrib: HashMap<u64, i64> = HashMap::new();
    let mut tot_contrib: HashMap<u64, i64> = HashMap::new();
    for m in 0..masters {
        let lid = m as u32;
        if k[m] > 0 {
            *tot_contrib.entry(comm_local[m]).or_default() += k[m] as i64;
        }
        for (dst, w) in cur.edges(lid) {
            if comm_local[m] == comm_local[dst as usize] {
                *in_contrib.entry(comm_local[m]).or_default() += w as i64;
            }
        }
    }
    let route = |m: HashMap<u64, i64>| -> Vec<Vec<(u64, i64)>> {
        let mut out = vec![Vec::new(); hosts];
        for (c, v) in m {
            out[own.owner(c as NodeId)].push((c, v));
        }
        out
    };
    let mut in_c: HashMap<u64, i64> = HashMap::new();
    for (c, v) in exchange_pairs(ctx, route(in_contrib)) {
        *in_c.entry(c).or_default() += v;
    }
    let mut tot_c: HashMap<u64, i64> = HashMap::new();
    for (c, v) in exchange_pairs(ctx, route(tot_contrib)) {
        *tot_c.entry(c).or_default() += v;
    }
    let local_q: f64 = tot_c
        .iter()
        .map(|(c, &t)| {
            let i = in_c.get(c).copied().unwrap_or(0) as f64;
            i / m_total - (t as f64 / m_total) * (t as f64 / m_total)
        })
        .sum();
    let q = ctx.all_reduce(local_q, |a, b| a + b);

    // --- Aggregation (single-threaded, like Vite's builder). ------------
    // Dense coarse ids for used communities, assigned by their owners.
    let mut used: Vec<Vec<(u64, i64)>> = vec![Vec::new(); hosts];
    let mut my_used: Vec<u64> = (0..masters).map(|m| comm_local[m]).collect();
    my_used.sort_unstable();
    my_used.dedup();
    for &c in &my_used {
        used[own.owner(c as NodeId)].push((c, 0));
    }
    let mut owned_used: Vec<u64> = exchange_pairs(ctx, used.clone())
        .into_iter()
        .map(|(c, _)| c)
        .chain(used[ctx.host()].iter().map(|&(c, _)| c))
        .collect();
    owned_used.sort_unstable();
    owned_used.dedup();
    let counts = ctx.all_gather(owned_used.len() as u64);
    let offset: u64 = counts[..ctx.host()].iter().sum();
    let n_coarse: u64 = counts.iter().sum();
    let newid: HashMap<u64, u64> = owned_used
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, offset + i as u64))
        .collect();

    // Resolve new ids for every community this host references.
    let mut refs: Vec<u64> = comm_local.clone();
    refs.sort_unstable();
    refs.dedup();
    let mut asks: Vec<Vec<u64>> = vec![Vec::new(); hosts];
    for &c in &refs {
        asks[own.owner(c as NodeId)].push(c);
    }
    let asked = ctx.exchange(asks.iter().map(|k| encode_slice(k)).collect());
    let answers = asked
        .iter()
        .map(|buf| {
            let pairs: Vec<(u64, u64)> = iter_decoded::<u64>(buf)
                .map(|c| (c, newid[&c]))
                .collect();
            encode_slice(&pairs)
        })
        .collect();
    let answered = ctx.exchange(answers);
    let mut resolve: HashMap<u64, u64> = HashMap::new();
    for buf in &answered {
        for (c, id) in iter_decoded::<(u64, u64)>(buf) {
            resolve.insert(c, id);
        }
    }
    for &c in &asks[ctx.host()] {
        resolve.insert(c, newid[&c]);
    }

    // Coarse edge aggregation, single-threaded.
    let mut agg: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for m in 0..masters {
        let lid = m as u32;
        let cu = resolve[&comm_local[m]] as NodeId;
        for (dst, w) in cur.edges(lid) {
            let cv = resolve[&comm_local[dst as usize]] as NodeId;
            *agg.entry((cu, cv)).or_default() += w;
        }
    }
    let coarse_edges = agg.into_iter().map(|((u, v), w)| (u, v, w)).collect();

    // The level-loop exit must be a *global* decision or hosts deadlock at
    // the next collective.
    let improved = ctx.all_reduce_or(any_move);

    (q, improved, coarse_edges, n_coarse as usize)
}

/// Extension hook for `(u64, i64)` serialization in answer buffers.
trait WriteTo {
    fn write_to(&self, buf: &mut Vec<u8>);
}

impl WriteTo for (u64, i64) {
    fn write_to(&self, buf: &mut Vec<u8>) {
        use kimbap_comm::Wire;
        self.write(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_comm::Cluster;
    use kimbap_dist::partition;
    use kimbap_graph::{builder::from_edges, gen};

    fn run(g: &kimbap_graph::Graph, hosts: usize, threads: usize, et: bool) -> ViteResult {
        let parts = partition(g, Policy::EdgeCutBlocked, hosts);
        let cfg = ViteConfig {
            early_termination: et,
            ..ViteConfig::default()
        };
        let results = Cluster::with_threads(hosts, threads)
            .run(|ctx| louvain(&parts[ctx.host()], ctx, &cfg));
        for r in &results {
            assert!((r.modularity - results[0].modularity).abs() < 1e-9);
        }
        results[0]
    }

    #[test]
    fn finds_ring_of_cliques() {
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 6;
            for a in 0..6 {
                for b in (a + 1)..6 {
                    edges.push((base + a, base + b, 1));
                }
            }
            edges.push((base, ((c + 1) % 4) * 6, 1));
        }
        let g = from_edges(edges);
        let r = run(&g, 3, 2, false);
        assert!(r.modularity > 0.6, "q = {}", r.modularity);
    }

    #[test]
    fn comparable_quality_to_kimbap() {
        let g = gen::rmat(7, 6, 29);
        let vite_q = run(&g, 2, 2, false).modularity;
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let b = kimbap_algos::NpmBuilder::default();
        let cfg = kimbap_algos::LouvainConfig::default();
        let kimbap = Cluster::with_threads(2, 2)
            .run(|ctx| kimbap_algos::louvain(&parts[ctx.host()], ctx, &b, &cfg));
        let kimbap_q = kimbap[0].modularity;
        assert!(
            (vite_q - kimbap_q).abs() < 0.15,
            "vite {vite_q} vs kimbap {kimbap_q}"
        );
        assert!(vite_q > 0.0);
    }

    #[test]
    fn early_termination_still_positive_quality() {
        let g = gen::grid_road(10, 10, 4);
        let r = run(&g, 2, 2, true);
        assert!(r.modularity > 0.4, "q = {}", r.modularity);
        assert!(r.final_nodes < 100);
    }
}
