//! A memcached-like distributed key-value store and a node-property map
//! backed by it (the *MC* runtime variant of §6.4).
//!
//! The paper implements Kimbap's request and reduce operations over
//! libMemcached: keys are **strings**, values opaque bytes, key
//! distribution is modulo hashing, reads are per-key `mget()` calls, and
//! reductions are **compare-and-swap retry loops** against the owner
//! server (`ReduceSync()` becomes a no-op). None of SGR, CF, or GAR apply.
//! This module reproduces those mechanics:
//!
//! * [`McStore`] — the store: one "server" per host, sharded hash maps with
//!   versioned CAS. It is shared memory here (the servers of a memcached
//!   deployment are passive processes), but every client operation is
//!   accounted as a message with its real key/value byte size.
//! * [`McNpm`] — the `NodePropMap` implementation: `reduce()` runs the
//!   fetch-combine-CAS loop immediately (hub keys make many threads retry
//!   against the same entry — the contention the paper measures);
//!   `request_sync()` issues one `get` per requested key; the cache layout
//!   is the same custom sorted map the other variants use.

use kimbap_comm::wire::{decode_slice, encode_slice};
use kimbap_comm::HostCtx;
use kimbap_dist::DistGraph;
use kimbap_graph::NodeId;
use kimbap_npm::{ConcurrentBitset, NodePropMap, PropValue, ReduceOp};
use kimbap_algos::MapBuilder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sub-shards per server (memcached's internal hash-table locking).
const SHARDS_PER_SERVER: usize = 16;

/// A versioned value: CAS succeeds only when the stored version matches.
type Entry = (u64, Vec<u8>);

/// The distributed key-value store: `hosts` servers, each a sharded string
/// hash map with versioned compare-and-swap.
#[derive(Debug)]
pub struct McStore {
    servers: Vec<Vec<Mutex<HashMap<String, Entry>>>>,
    /// Total CAS attempts (for contention reporting).
    cas_attempts: AtomicU64,
    /// CAS attempts that lost the race and had to retry.
    cas_failures: AtomicU64,
}

impl McStore {
    /// Creates a store with one server per host.
    pub fn new(hosts: usize) -> Self {
        McStore {
            servers: (0..hosts)
                .map(|_| (0..SHARDS_PER_SERVER).map(|_| Mutex::new(HashMap::new())).collect())
                .collect(),
            cas_attempts: AtomicU64::new(0),
            cas_failures: AtomicU64::new(0),
        }
    }

    fn hash(key: &str) -> u64 {
        // FNV-1a, as a stand-in for memcached's key hash.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The server a key lives on (modulo hashing, as the paper configures).
    pub fn server_of(&self, key: &str) -> usize {
        (Self::hash(key) % self.servers.len() as u64) as usize
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let h = Self::hash(key);
        let server = (h % self.servers.len() as u64) as usize;
        let shard = ((h >> 32) % SHARDS_PER_SERVER as u64) as usize;
        &self.servers[server][shard]
    }

    /// `get`: returns `(version, value)` if present.
    pub fn get(&self, key: &str) -> Option<Entry> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Unconditional `set` (version bumps).
    pub fn set(&self, key: &str, value: Vec<u8>) {
        let mut s = self.shard(key).lock();
        let v = s.get(key).map(|e| e.0 + 1).unwrap_or(1);
        s.insert(key.to_string(), (v, value));
    }

    /// Compare-and-swap: succeeds iff the stored version equals
    /// `expected_version` (0 = expect absent).
    pub fn cas(&self, key: &str, expected_version: u64, value: Vec<u8>) -> bool {
        self.cas_attempts.fetch_add(1, Ordering::Relaxed);
        let mut s = self.shard(key).lock();
        let cur = s.get(key).map(|e| e.0).unwrap_or(0);
        if cur != expected_version {
            self.cas_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        s.insert(key.to_string(), (cur + 1, value));
        true
    }

    /// `(attempts, failures)` of all CAS operations so far.
    pub fn cas_stats(&self) -> (u64, u64) {
        (
            self.cas_attempts.load(Ordering::Relaxed),
            self.cas_failures.load(Ordering::Relaxed),
        )
    }
}

/// Builds [`McNpm`] maps over a shared [`McStore`] — plug this into any
/// `kimbap-algos` algorithm to get its MC variant.
///
/// # Example
///
/// ```
/// use kimbap_algos::cc;
/// use kimbap_baselines::mckv::McBuilder;
/// use kimbap_comm::Cluster;
/// use kimbap_dist::{partition, Policy};
/// use kimbap_graph::gen;
///
/// let g = gen::grid_road(4, 4, 0);
/// let parts = partition(&g, Policy::EdgeCutBlocked, 2);
/// let b = McBuilder::new(2);
/// let per_host = Cluster::new(2).run(|ctx| {
///     cc::cc_sv(&parts[ctx.host()], ctx, &b)
/// });
/// let labels = kimbap_algos::merge_master_values(g.num_nodes(), per_host);
/// assert!(labels.iter().all(|&l| l == 0));
/// ```
#[derive(Debug)]
pub struct McBuilder {
    store: Arc<McStore>,
    /// Per-host map-id counters (all hosts create maps in program order).
    next_id: Vec<AtomicUsize>,
}

impl McBuilder {
    /// Creates a builder (and the backing store) for `hosts` hosts.
    pub fn new(hosts: usize) -> Self {
        McBuilder {
            store: Arc::new(McStore::new(hosts)),
            next_id: (0..hosts).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// The shared store (for stats).
    pub fn store(&self) -> &McStore {
        &self.store
    }
}

impl MapBuilder for McBuilder {
    type Map<'g, T: PropValue, Op: ReduceOp<T>> = McNpm<'g, T, Op>;

    fn build<'g, T: PropValue, Op: ReduceOp<T>>(
        &'g self,
        dg: &'g DistGraph,
        ctx: &HostCtx,
        op: Op,
    ) -> McNpm<'g, T, Op> {
        let id = self.next_id[ctx.host()].fetch_add(1, Ordering::Relaxed);
        McNpm::new(dg, ctx, op, Arc::clone(&self.store), id)
    }
}

/// A node-property map over [`McStore`] (see the [module docs](self)).
pub struct McNpm<'g, T: PropValue, Op: ReduceOp<T>> {
    /// Kept for lifetime parity with the other backends; the store itself
    /// is partition-oblivious.
    _dg: &'g DistGraph,
    op: Op,
    map_id: usize,
    store: Arc<McStore>,
    host: usize,
    n: usize,
    /// Same custom sorted-vector cache as the other variants.
    cache_keys: Vec<NodeId>,
    cache_vals: Vec<T>,
    requests: ConcurrentBitset,
    /// Keys kept permanently resident (all local proxies): MC fetches
    /// "master and remote values" alike.
    pin_set: Vec<NodeId>,
    updated: AtomicBool,
}

impl<'g, T: PropValue, Op: ReduceOp<T>> McNpm<'g, T, Op> {
    fn new(dg: &'g DistGraph, ctx: &HostCtx, op: Op, store: Arc<McStore>, map_id: usize) -> Self {
        let n = dg.num_global_nodes();
        let mut pin_set: Vec<NodeId> = dg
            .local_nodes()
            .map(|l| dg.local_to_global(l))
            .collect();
        pin_set.sort_unstable();
        let cache_vals = vec![op.identity(); pin_set.len()];
        McNpm {
            _dg: dg,
            op,
            map_id,
            store,
            host: ctx.host(),
            n,
            cache_keys: pin_set.clone(),
            cache_vals,
            requests: ConcurrentBitset::new(n),
            pin_set,
            updated: AtomicBool::new(false),
        }
    }

    fn key_string(&self, key: NodeId) -> String {
        format!("m{}:{}", self.map_id, key)
    }

    /// One accounted store operation: `messages` counts the request (and
    /// the implicit response), bytes count key + value payloads.
    fn account(&self, ctx: &HostCtx, key: &str, value_bytes: usize) {
        let remote = self.store.server_of(key) != self.host;
        if remote {
            ctx.add_traffic(1, (key.len() + value_bytes) as u64);
        }
    }

    fn fetch(&self, ctx: &HostCtx, key: NodeId) -> T {
        let ks = self.key_string(key);
        self.account(ctx, &ks, T::SIZE);
        match self.store.get(&ks) {
            Some((_, bytes)) => decode_slice::<T>(&bytes)[0],
            None => self.op.identity(),
        }
    }

    /// Refreshes every resident key with one `get` per key (the paper's
    /// `mget` batches the round-trips but still serializes each key/value).
    fn refresh_resident(&mut self, ctx: &HostCtx) {
        // Order with the other hosts' preceding writes (Set/CAS go straight
        // to the shared store, unlike the exchange-synchronized backends).
        ctx.barrier();
        for i in 0..self.cache_keys.len() {
            let k = self.cache_keys[i];
            self.cache_vals[i] = self.fetch(ctx, k);
        }
        // Memcached clients synchronize at our BSP boundaries.
        ctx.barrier();
    }
}

impl<'g, T: PropValue, Op: ReduceOp<T>> NodePropMap<T> for McNpm<'g, T, Op> {
    fn init_masters(&mut self, f: &dyn Fn(NodeId) -> T) {
        // Hash-partition the Set() work like the paper's MC client does.
        for g in 0..self.n as NodeId {
            let ks = self.key_string(g);
            if self.store.server_of(&ks) == self.host {
                self.set(g, f(g));
            }
        }
        for i in 0..self.cache_keys.len() {
            self.cache_vals[i] = f(self.cache_keys[i]);
        }
    }

    fn read(&self, key: NodeId) -> T {
        match self.cache_keys.binary_search(&key) {
            Ok(i) => self.cache_vals[i],
            Err(_) => panic!(
                "host {}: MC read of node {} that was neither requested nor resident",
                self.host, key
            ),
        }
    }

    fn set(&mut self, key: NodeId, value: T) {
        let ks = self.key_string(key);
        self.store.set(&ks, encode_slice(&[value]));
        self.updated.store(true, Ordering::Relaxed);
    }

    fn reduce(&self, tid: usize, key: NodeId, value: T) {
        let _ = tid; // MC has no thread-local maps: CAS directly.
        let ks = self.key_string(key);
        loop {
            let (version, old) = match self.store.get(&ks) {
                Some((v, b)) => (v, decode_slice::<T>(&b)[0]),
                None => (0, self.op.identity()),
            };
            let new = self.op.combine(old, value);
            if new == old {
                return; // no change: nothing to write
            }
            if self.store.cas(&ks, version, encode_slice(&[new])) {
                self.updated.store(true, Ordering::Relaxed);
                return;
            }
            // Lost the race: fetch again and retry (the paper's loop).
        }
    }

    fn request(&self, key: NodeId) {
        self.requests.set(key as usize);
    }

    fn request_sync(&mut self, ctx: &HostCtx) {
        // See refresh_resident: observe every write from the previous
        // phase before fetching.
        ctx.barrier();
        let keys: Vec<NodeId> = self.requests.iter_set().map(|k| k as NodeId).collect();
        self.requests.clear();
        let pairs: Vec<(NodeId, T)> =
            keys.iter().map(|&k| (k, self.fetch(ctx, k))).collect();
        // Merge into the cache: fresh fetches overwrite resident entries
        // (they may still hold pre-round values) and new keys are inserted
        // in order.
        for (k, v) in pairs {
            match self.cache_keys.binary_search(&k) {
                Ok(i) => self.cache_vals[i] = v,
                Err(pos) => {
                    self.cache_keys.insert(pos, k);
                    self.cache_vals.insert(pos, v);
                }
            }
        }
        ctx.barrier();
    }

    fn reduce_sync(&mut self, ctx: &HostCtx) {
        // CAS already materialized every reduction; just resynchronize and
        // refresh what this host reads.
        ctx.barrier();
        self.refresh_resident(ctx);
        // Non-resident ad-hoc entries are stale: drop them.
        let resident = self.pin_set.clone();
        let mut keys = Vec::with_capacity(resident.len());
        let mut vals = Vec::with_capacity(resident.len());
        for &k in &resident {
            if let Ok(i) = self.cache_keys.binary_search(&k) {
                keys.push(k);
                vals.push(self.cache_vals[i]);
            }
        }
        self.cache_keys = keys;
        self.cache_vals = vals;
    }

    fn broadcast_sync(&mut self, ctx: &HostCtx) {
        self.refresh_resident(ctx);
    }

    fn pin_mirrors(&mut self, ctx: &HostCtx) {
        self.refresh_resident(ctx);
    }

    fn unpin_mirrors(&mut self) {}

    fn reset_updated(&mut self) {
        self.updated.store(false, Ordering::Relaxed);
    }

    fn reset_values(&mut self, ctx: &HostCtx) {
        // Owner-partitioned reset of the whole key space.
        let id = self.op.identity();
        for g in 0..self.n as NodeId {
            let ks = self.key_string(g);
            if self.store.server_of(&ks) == self.host {
                self.store.set(&ks, encode_slice(&[id]));
            }
        }
        for v in self.cache_vals.iter_mut() {
            *v = id;
        }
        self.updated.store(false, Ordering::Relaxed);
        ctx.barrier();
    }

    fn is_updated(&self, ctx: &HostCtx) -> bool {
        ctx.all_reduce_or(self.updated.load(Ordering::Relaxed))
    }
}

impl<T: PropValue, Op: ReduceOp<T>> std::fmt::Debug for McNpm<'_, T, Op> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McNpm")
            .field("map_id", &self.map_id)
            .field("host", &self.host)
            .field("resident", &self.pin_set.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_algos::{cc, merge_master_values, refcheck};
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::gen;

    #[test]
    fn store_get_set_cas() {
        let s = McStore::new(3);
        assert!(s.get("a").is_none());
        s.set("a", vec![1]);
        let (v, val) = s.get("a").unwrap();
        assert_eq!((v, val), (1, vec![1]));
        assert!(!s.cas("a", 0, vec![9]), "stale version must fail");
        assert!(s.cas("a", 1, vec![2]));
        assert_eq!(s.get("a").unwrap().1, vec![2]);
        let (attempts, failures) = s.cas_stats();
        assert_eq!((attempts, failures), (2, 1));
    }

    #[test]
    fn concurrent_cas_reduces_to_min() {
        let s = Arc::new(McStore::new(2));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        // Min-reduce via CAS loop.
                        let val = 1000 - (t * 100 + i) % 997;
                        loop {
                            let (ver, old) = s
                                .get("k")
                                .map(|(v, b)| (v, u64::from_le_bytes(b.try_into().unwrap())))
                                .unwrap_or((0, u64::MAX));
                            let new = old.min(val);
                            if new == old || s.cas("k", ver, new.to_le_bytes().to_vec()) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let (_, bytes) = s.get("k").unwrap();
        // Values are 1000 - (t*100 + i) with t*100+i in 0..800: min = 201.
        assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 201);
        assert!(s.cas_stats().0 > 0);
    }

    #[test]
    fn cc_sv_on_mc_matches_reference() {
        let g = gen::rmat(6, 4, 19);
        let expected = refcheck::connected_components(&g);
        let parts = partition(&g, Policy::EdgeCutBlocked, 3);
        let b = McBuilder::new(3);
        let per_host = Cluster::with_threads(3, 2)
            .run(|ctx| cc::cc_sv(&parts[ctx.host()], ctx, &b));
        assert_eq!(merge_master_values(g.num_nodes(), per_host), expected);
    }

    #[test]
    fn cc_lp_on_mc_matches_reference() {
        let g = gen::grid_road(5, 5, 1);
        let expected = refcheck::connected_components(&g);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let b = McBuilder::new(2);
        let per_host = Cluster::new(2).run(|ctx| cc::cc_lp(&parts[ctx.host()], ctx, &b));
        assert_eq!(merge_master_values(g.num_nodes(), per_host), expected);
    }

    #[test]
    fn mc_counts_remote_traffic() {
        let g = gen::grid_road(4, 4, 0);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let b = McBuilder::new(2);
        let stats = Cluster::new(2).run(|ctx| {
            cc::cc_sv(&parts[ctx.host()], ctx, &b);
            ctx.stats()
        });
        assert!(stats.iter().any(|s| s.messages > 0));
    }
}
