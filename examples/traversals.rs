//! Classic traversal workloads (BFS, SSSP, PageRank) on the Kimbap
//! node-property map — the framework is not limited to the paper's seven
//! algorithms.
//!
//! Run with: `cargo run --release --example traversals`

use std::time::Instant;

use kimbap::prelude::*;
use kimbap_algos::extra::{bfs, pagerank, sssp, PR_SCALE, UNREACHED};
use kimbap_algos::{merge_master_values, NpmBuilder};

fn main() {
    let hosts = 4;
    let g = gen::rmat(12, 8, 11);
    println!("input: {}", GraphStats::of(&g));
    let parts = partition(&g, Policy::CartesianVertexCut, hosts);
    let b = NpmBuilder::default();
    let cluster = Cluster::with_threads(hosts, 2);

    // BFS levels from node 0.
    let t = Instant::now();
    let levels = merge_master_values(
        g.num_nodes(),
        cluster.run(|ctx| bfs(&parts[ctx.host()], ctx, &b, 0)),
    );
    let reached = levels.iter().filter(|&&l| l != UNREACHED).count();
    let depth = levels.iter().filter(|&&l| l != UNREACHED).max().unwrap();
    println!("BFS     : reached {reached} nodes, depth {depth}, in {:.2?}", t.elapsed());

    // Weighted shortest paths.
    let gw = gen::with_random_weights(&g, 100, 3);
    let parts_w = partition(&gw, Policy::CartesianVertexCut, hosts);
    let t = Instant::now();
    let dist = merge_master_values(
        gw.num_nodes(),
        cluster.run(|ctx| sssp(&parts_w[ctx.host()], ctx, &b, 0)),
    );
    let far = dist.iter().filter(|&&d| d != UNREACHED).max().unwrap();
    println!("SSSP    : farthest reachable distance {far}, in {:.2?}", t.elapsed());

    // PageRank (10 iterations).
    let t = Instant::now();
    let ranks = merge_master_values(
        g.num_nodes(),
        cluster.run(|ctx| pagerank(&parts[ctx.host()], ctx, &b, 10)),
    );
    let top = (0..g.num_nodes()).max_by_key(|&u| ranks[u]).unwrap();
    println!(
        "PageRank: top node {top} (degree {}), rank {:.3}, in {:.2?}",
        g.degree(top as u32),
        ranks[top] as f64 / PR_SCALE as f64,
        t.elapsed()
    );
    // The top-ranked node should be a hub.
    assert!(g.degree(top as u32) as f64 >= 0.2 * g.max_degree() as f64);
}
