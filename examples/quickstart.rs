//! Quickstart: connected components with a trans-vertex algorithm.
//!
//! Builds a small two-component graph, partitions it across a simulated
//! 2-host cluster, runs Shiloach-Vishkin (the paper's running example),
//! and prints the labels plus the communication bill.
//!
//! Run with: `cargo run --release --example quickstart`

use kimbap::prelude::*;
use kimbap_algos::{cc, merge_master_values, NpmBuilder};

fn main() {
    // A path 0-1-2-3-4 and a triangle 10-11-12, plus an isolated node.
    let mut b = GraphBuilder::new();
    for i in 0..4u32 {
        b.add_edge(i, i + 1, 1);
    }
    b.add_edge(10, 11, 1).add_edge(11, 12, 1).add_edge(12, 10, 1);
    b.ensure_nodes(14);
    let g = b.symmetric(true).build();
    println!("input: {}", GraphStats::of(&g));

    // Partition edges across 2 hosts with a Cartesian vertex-cut (what the
    // paper uses for CC) and run CC-SV on every host, SPMD-style.
    let parts = partition(&g, Policy::CartesianVertexCut, 2);
    let builder = NpmBuilder::default(); // SGR + CF + GAR
    let outputs = Cluster::with_threads(2, 2).run(|ctx| {
        let labels = cc::cc_sv(&parts[ctx.host()], ctx, &builder);
        (labels, ctx.stats())
    });

    let (label_lists, stats): (Vec<_>, Vec<_>) = outputs.into_iter().unzip();
    let labels = merge_master_values(g.num_nodes(), label_lists);
    println!("components: {labels:?}");
    assert_eq!(labels[0..5], [0, 0, 0, 0, 0]);
    assert_eq!(labels[10..13], [10, 10, 10]);
    assert_eq!(labels[13], 13); // isolated node is its own component

    for (host, s) in stats.iter().enumerate() {
        println!(
            "host {host}: {} msgs, {} bytes, {:.2} ms in communication",
            s.messages,
            s.bytes,
            s.comm_nanos as f64 / 1e6
        );
    }
}
