//! Fault injection and recovery on the simulated cluster.
//!
//! Runs connected components three times on the same graph: fault-free,
//! under seeded frame faults (drops + corruption, survived by the
//! retransmitting collectives), and with a mid-run host crash (survived
//! by whole-closure replay). All three must agree bit-for-bit.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use kimbap::prelude::*;
use kimbap_algos::{cc::cc_lp, merge_master_values, NpmBuilder};

const HOSTS: usize = 3;

fn run(g: &Graph, plan: FaultPlan, recovering: bool) -> (Vec<u64>, u64) {
    let parts = partition(g, Policy::EdgeCutBlocked, HOSTS);
    let b = NpmBuilder::default();
    let cluster = Cluster::with_threads(HOSTS, 2);
    let out = cluster.run_with_faults(plan, |ctx| {
        let labels = if recovering {
            ctx.run_recovering(|ctx| cc_lp(&parts[ctx.host()], ctx, &b))
        } else {
            cc_lp(&parts[ctx.host()], ctx, &b)
        };
        (labels, ctx.stats().retransmits)
    });
    let retx = out.iter().map(|(_, r)| r).sum();
    let labels = merge_master_values(g.num_nodes(), out.into_iter().map(|(l, _)| l).collect());
    (labels, retx)
}

fn main() {
    let g = gen::rmat(10, 8, 7);
    println!(
        "graph: {} nodes / {} edges, {HOSTS} hosts",
        g.num_nodes(),
        g.num_edges()
    );

    let (baseline, _) = run(&g, FaultPlan::new(), false);
    println!("fault-free:        {} components", count(&baseline));

    // Seeded frame faults: targeted drop + corruption, plus 2% random drops.
    let noisy = FaultPlan::new()
        .drop_frame(0, 1, 1)
        .corrupt_frame(1, 2, 2, 17)
        .with_seed(7)
        .drop_rate(0.02);
    let (labels, retx) = run(&g, noisy, false);
    assert_eq!(labels, baseline, "frame faults changed the output");
    println!("drops+corruption:  {} components ({retx} frames retransmitted)", count(&labels));

    // Host 1 dies entering round 2; every host replays from the top.
    let (labels, _) = run(&g, FaultPlan::new().crash_host(1, 2), true);
    assert_eq!(labels, baseline, "crash recovery changed the output");
    println!("mid-run crash:     {} components (recovered, bit-identical)", count(&labels));
}

fn count(labels: &[u64]) -> usize {
    let mut roots: Vec<u64> = labels.to_vec();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}
