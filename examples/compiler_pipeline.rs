//! The compiler pipeline, end to end: write CC-SV once (the paper's
//! Fig. 4), compile it with and without the §5.2 optimizations, inspect the
//! generated BSP structure (Fig. 8), and execute both plans on a cluster.
//!
//! Run with: `cargo run --release --example compiler_pipeline`

use kimbap::engine::Engine;
use kimbap::prelude::*;
use kimbap_compiler::transform::{CompiledLoop, CompiledTop};
use kimbap_compiler::{classify_program, compile, programs, OptLevel};

fn describe(name: &str, l: &CompiledLoop) {
    println!(
        "  {name}: iterate {:?}, {} request phase(s), pin {:?}, reduce-sync {:?}, broadcast {:?}",
        l.iterator,
        l.request_phases.len(),
        l.pinned_maps,
        l.reduce_maps,
        l.broadcast_maps,
    );
}

fn main() {
    let prog = programs::cc_sv();
    let class = classify_program(&prog);
    println!(
        "program {}: {} operator(s), adjacent={}, trans={}",
        prog.name, class.num_operators, class.uses_adjacent, class.uses_trans
    );

    for opt in [OptLevel::Full, OptLevel::None] {
        println!("\ncompiled at {opt:?}:");
        let plan = compile(&prog, opt);
        if let CompiledTop::DoWhileScalar { body, .. } = &plan.body[1] {
            if let CompiledTop::Loop(hook) = &body[1] {
                describe("hook    ", hook);
            }
            if let CompiledTop::Loop(shortcut) = &body[2] {
                describe("shortcut", shortcut);
            }
        }
    }

    // Execute both plans and compare results and communication volume.
    let g = gen::rmat(10, 8, 5);
    let parts = partition(&g, Policy::EdgeCutBlocked, 4);
    println!("\nexecuting on {} ({} hosts):", GraphStats::of(&g), 4);
    let mut results = Vec::new();
    for opt in [OptLevel::Full, OptLevel::None] {
        let plan = compile(&prog, opt);
        let t = std::time::Instant::now();
        let out = Cluster::with_threads(4, 2).run(|ctx| {
            let o = Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx);
            (o, ctx.stats())
        });
        let elapsed = t.elapsed();
        let bytes: u64 = out.iter().map(|(_, s)| s.bytes).sum();
        let rounds = out[0].0.rounds;
        println!("  {opt:?}: {elapsed:.2?}, {rounds} BSP rounds, {bytes} bytes moved");
        let mut labels = vec![0u64; g.num_nodes()];
        for (o, _) in &out {
            for &(gid, v) in &o.map_values[0] {
                labels[gid as usize] = v;
            }
        }
        results.push(labels);
    }
    assert_eq!(results[0], results[1], "OPT and NO-OPT must agree");
    println!("\nboth plans produce identical components — OK");
}
