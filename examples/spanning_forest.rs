//! Minimum spanning forest with distributed Boruvka — a trans-vertex
//! program that hooks components through dynamically computed nodes.
//!
//! Run with: `cargo run --release --example spanning_forest`

use std::time::Instant;

use kimbap::prelude::*;
use kimbap_algos::msf::{merge_forest, msf};
use kimbap_algos::{refcheck, NpmBuilder};

fn main() {
    let hosts = 4;
    // A weighted road-network analog: high diameter, small degrees.
    let g = gen::grid_road(250, 250, 3);
    println!("input: {}", GraphStats::of(&g));

    let parts = partition(&g, Policy::CartesianVertexCut, hosts);
    let builder = NpmBuilder::default();

    let t = Instant::now();
    let per_host = Cluster::with_threads(hosts, 2).run(|ctx| msf(&parts[ctx.host()], ctx, &builder));
    let elapsed = t.elapsed();

    let (edges, total) = merge_forest(per_host);
    println!(
        "forest: {} edges, total weight {total}, found in {elapsed:.2?}",
        edges.len()
    );

    // Verify against single-threaded Kruskal.
    assert_eq!(total, refcheck::msf_weight(&g));
    assert_eq!(edges.len(), refcheck::msf_edge_count(&g));
    println!("matches Kruskal reference — OK");
}
