//! Community detection on a power-law graph: Kimbap Louvain and Leiden vs
//! the Vite baseline.
//!
//! Reproduces in miniature what Figs. 9a/9b measure: same deterministic
//! Louvain, three runtimes, timing plus modularity.
//!
//! Run with: `cargo run --release --example community_detection`

use std::time::Instant;

use kimbap::prelude::*;
use kimbap_algos::{compose_labels, leiden, louvain, refcheck, LouvainConfig, NpmBuilder};
use kimbap_baselines::vite;

fn main() {
    let hosts = 4;
    let g = gen::rmat(13, 12, 7);
    println!("input: {}", GraphStats::of(&g));
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);

    // Kimbap Louvain.
    let builder = NpmBuilder::default();
    let cfg = LouvainConfig::default();
    let t = Instant::now();
    let results =
        Cluster::with_threads(hosts, 2).run(|ctx| louvain(&parts[ctx.host()], ctx, &builder, &cfg));
    let lv_time = t.elapsed();
    let labels = compose_labels(g.num_nodes(), &results);
    let communities = {
        let mut c = labels.clone();
        c.sort_unstable();
        c.dedup();
        c.len()
    };
    println!(
        "kimbap LV : q={:.4} ({} levels, {} communities) in {:.2?}",
        results[0].modularity, results[0].levels, communities, lv_time
    );
    // The reported modularity is a real, verifiable quantity.
    let q_check = refcheck::modularity(&g, &labels);
    assert!((results[0].modularity - q_check).abs() < 1e-9);

    // Kimbap Leiden (the paper's first distributed implementation).
    let t = Instant::now();
    let ld = Cluster::with_threads(hosts, 2)
        .run(|ctx| leiden(&parts[ctx.host()], ctx, &builder, &cfg));
    println!(
        "kimbap LD : q={:.4} ({} levels) in {:.2?}",
        ld[0].modularity,
        ld[0].levels,
        t.elapsed()
    );

    // Vite baseline (hand-optimized distributed Louvain).
    let vcfg = vite::ViteConfig::default();
    let t = Instant::now();
    let v = Cluster::with_threads(hosts, 2).run(|ctx| vite::louvain(&parts[ctx.host()], ctx, &vcfg));
    println!(
        "vite LV   : q={:.4} ({} levels) in {:.2?}",
        v[0].modularity,
        v[0].levels,
        t.elapsed()
    );
}
