#!/usr/bin/env bash
# Tracked benchmark harness: runs the perf-trajectory benches with JSON
# recording enabled (see crates/bench/src/json.rs) and wraps the records
# into BENCH_<date>.json at the repo root.
#
#   scripts/bench.sh            full run; writes BENCH_$(date +%F).json
#   scripts/bench.sh --smoke    CI mode: one tiny graph through the fig11
#                               harness, asserts records were emitted,
#                               writes nothing to the repo
#
# Knobs: KIMBAP_SCALE / KIMBAP_THREADS / KIMBAP_SKIP_MC as usual, plus
# KIMBAP_BENCH_BASELINE=<jsonl file> to embed before-numbers (e.g. from a
# run on the previous commit) as a "baseline" array in the output.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
[ "${1:-}" = "--smoke" ] && SMOKE=1

TMP_JSONL="$(mktemp /tmp/kimbap-bench-XXXXXX.jsonl)"
trap 'rm -f "$TMP_JSONL"' EXIT
export KIMBAP_BENCH_JSON="$TMP_JSONL"

if [ "$SMOKE" = 1 ]; then
    export KIMBAP_SCALE=tiny KIMBAP_SKIP_MC=1 KIMBAP_HOSTS_MEDIUM=2 KIMBAP_BENCH_SMOKE=1
    cargo bench -q -p kimbap-bench --bench fig11_runtime_variants
    cargo bench -q -p kimbap-bench --bench max_graph_size
    # The frontier bench asserts internally that rounds after round 2 ran a
    # strict subset of the node space; here we additionally check that its
    # records made it into the JSONL with the sparse flag set.
    cargo bench -q -p kimbap-bench --bench frontier_cclp
    if ! grep -q '"system":"sparse".*"sparse":true' "$TMP_JSONL"; then
        echo "bench smoke: sparse frontier path not exercised" >&2
        exit 1
    fi
    # Split-phase collectives: the pipelined fig11 records must show wire
    # chunks sent and a nonzero overlap window, and the serial ablation
    # record (sgr_cf_gar_nopipe) must report exactly zero overlap.
    if ! grep -q '"chunks_sent":[1-9]' "$TMP_JSONL"; then
        echo "bench smoke: no wire chunks recorded" >&2
        exit 1
    fi
    if ! grep '"system":"sgr_cf_gar"' "$TMP_JSONL" \
            | grep -q '"overlap_secs":[0-9]*\.[0-9]*[1-9]'; then
        echo "bench smoke: pipelined run recorded no compute/comm overlap" >&2
        exit 1
    fi
    if ! grep '"system":"sgr_cf_gar_nopipe"' "$TMP_JSONL" \
            | grep -q '"overlap_secs":0\.000000'; then
        echo "bench smoke: serial ablation should report zero overlap" >&2
        exit 1
    fi
    # Compressed storage tier: every run record must carry the footprint
    # columns, and the size records must show compressed beating raw.
    if ! grep '"bench":"fig11_runtime_variants"' "$TMP_JSONL" \
            | grep -q '"graph_bytes":[1-9][0-9]*,"max_host_graph_bytes":[1-9]'; then
        echo "bench smoke: run records missing graph_bytes columns" >&2
        exit 1
    fi
    if ! grep -q '"bench":"max_graph_size".*"system":"compressed".*"bytes_per_edge"' "$TMP_JSONL"; then
        echo "bench smoke: no compressed size record emitted" >&2
        exit 1
    fi
    if ! grep '"bench":"fig11_runtime_variants"' "$TMP_JSONL" \
            | grep -q '"peak_rss_bytes":[1-9]'; then
        echo "bench smoke: peak_rss_bytes not recorded" >&2
        exit 1
    fi
    # Elastic membership counters: every run record must serialize the
    # join columns (zero in fault-free runs, but always present so the
    # perf history can diff churn experiments).
    if ! grep '"bench":"fig11_runtime_variants"' "$TMP_JSONL" \
            | grep -q '"joins":[0-9][0-9]*,"grow_resharded_keys":[0-9]'; then
        echo "bench smoke: run records missing joins/grow_resharded_keys columns" >&2
        exit 1
    fi
    # Serving layer: the mixed job stream repeats queries, so its record
    # must show real cache hits — a hitless run means the result cache
    # (or its HostStats accounting) is broken.
    cargo bench -q -p kimbap-bench --bench serve_throughput
    if ! grep '"bench":"serve_throughput"' "$TMP_JSONL" \
            | grep -q '"cache_hits":[1-9]'; then
        echo "bench smoke: serve_throughput recorded no cache hits" >&2
        exit 1
    fi
    lines=$(wc -l < "$TMP_JSONL")
    if [ "$lines" -lt 1 ]; then
        echo "bench smoke: no JSON records produced" >&2
        exit 1
    fi
    echo "bench smoke: $lines JSON record(s) produced OK (sparse + overlap paths exercised)"
    exit 0
fi

cargo bench -q -p kimbap-bench --bench micro_npm
cargo bench -q -p kimbap-bench --bench fig11_runtime_variants
cargo bench -q -p kimbap-bench --bench table3_single_host
cargo bench -q -p kimbap-bench --bench frontier_cclp
cargo bench -q -p kimbap-bench --bench max_graph_size
cargo bench -q -p kimbap-bench --bench serve_throughput

# Never clobber an already-tracked file from an earlier run the same day.
OUT="BENCH_$(date +%F).json"
n=2
while [ -e "$OUT" ]; do
    OUT="BENCH_$(date +%F).$n.json"
    n=$((n + 1))
done
{
    echo "{"
    echo "  \"date\": \"$(date +%F)\","
    echo "  \"scale\": \"${KIMBAP_SCALE:-small}\","
    echo "  \"threads_per_host\": ${KIMBAP_THREADS:-2},"
    if [ -n "${KIMBAP_BENCH_BASELINE:-}" ] && [ -f "$KIMBAP_BENCH_BASELINE" ]; then
        echo "  \"baseline\": ["
        sed 's/^/    /;$!s/$/,/' "$KIMBAP_BENCH_BASELINE"
        echo "  ],"
    fi
    echo "  \"records\": ["
    sed 's/^/    /;$!s/$/,/' "$TMP_JSONL"
    echo "  ]"
    echo "}"
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP_JSONL") records)"
