#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lints, the fixed-seed
# fault-injection matrix (3 plans x 4 algorithms on the simulation
# backend; see crates/kimbap/tests/fault_injection.rs::fault_matrix_smoke),
# and a seed-replayable simulation fuzz smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo clippy --workspace --benches --tests -- -D warnings"
cargo clippy --workspace --benches --tests -- -D warnings

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench -q --workspace --no-run

echo "==> fault-matrix smoke (fixed seeds)"
cargo test --release -q -p kimbap --test fault_injection fault_matrix_smoke

echo "==> cross-backend fault matrix (sim vs in-proc vs TCP loopback)"
cargo test --release -q -p kimbap --test transport_robustness

echo "==> simulation fuzz smoke (seed-replayable; failures print a replay cmd)"
./target/release/kimbap sim --algo cc-lp --seeds 50
./target/release/kimbap sim --algo msf --seeds 50

echo "==> elastic fuzz smoke (kill-bearing plans; survivors must shrink+converge)"
./target/release/kimbap sim --algo cc-lp --seeds 25 --hosts 4 --allow-shrink

echo "==> churn fuzz smoke (seeded join/kill plans; every interleaving must converge)"
./target/release/kimbap sim --algo cc-lp --seeds 25 --hosts 4 --allow-shrink --allow-grow

echo "==> serve scheduler fuzz smoke (seeded job mixes + banded faults; per-job diff vs serial)"
./target/release/kimbap serve-sim --seeds 25 --hosts 3

echo "==> TCP-loopback smoke (multi-process kimbap bin vs in-proc, diffed)"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/kimbap gen --kind rmat --scale 8 --ef 4 --seed 9 \
    --out "$SMOKE_DIR/g.kg"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --faults drop --seed 1 --out "$SMOKE_DIR/inproc.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --transport tcp --port-base 46800 --faults drop --seed 1 \
    --out "$SMOKE_DIR/tcp.txt"
diff "$SMOKE_DIR/inproc.txt" "$SMOKE_DIR/tcp.txt"
echo "    in-proc and TCP labels identical"

echo "==> pipelined-vs-serial smoke (same seed, both modes, all three backends)"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --seed 1 --out "$SMOKE_DIR/pipe.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --seed 1 --no-pipeline --out "$SMOKE_DIR/serial.txt"
diff "$SMOKE_DIR/pipe.txt" "$SMOKE_DIR/serial.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --transport tcp --port-base 47000 --seed 1 --out "$SMOKE_DIR/pipe-tcp.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --transport tcp --port-base 47100 --seed 1 --no-pipeline \
    --out "$SMOKE_DIR/serial-tcp.txt"
diff "$SMOKE_DIR/pipe-tcp.txt" "$SMOKE_DIR/serial-tcp.txt"
./target/release/kimbap sim --algo cc-lp --seed 3 --hosts 4 \
    --out "$SMOKE_DIR/pipe-sim.txt"
./target/release/kimbap sim --algo cc-lp --seed 3 --hosts 4 --no-pipeline \
    --out "$SMOKE_DIR/serial-sim.txt"
diff "$SMOKE_DIR/pipe-sim.txt" "$SMOKE_DIR/serial-sim.txt"
echo "    pipelined and --no-pipeline outputs identical (inproc, tcp, sim)"

echo "==> TCP kill smoke (worker 1 killed mid-run; survivors' output diffed)"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 4 --threads 2 \
    --out "$SMOKE_DIR/clean.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 4 --threads 2 \
    --transport tcp --port-base 46900 --faults kill --allow-shrink \
    --out "$SMOKE_DIR/degraded.txt"
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/degraded.txt"
echo "    degraded (3-host) and fault-free (4-host) labels identical"

echo "==> TCP grow smoke (a real worker process joins mid-run; output diffed)"
# A grid graph's diameter keeps cc-lp running long enough for the
# late-spawned joiner worker to knock mid-computation.
./target/release/kimbap gen --kind grid --rows 150 --cols 150 --seed 9 \
    --out "$SMOKE_DIR/grid.kg"
./target/release/kimbap run cc-lp "$SMOKE_DIR/grid.kg" --hosts 3 --threads 2 \
    --out "$SMOKE_DIR/grid-clean.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/grid.kg" --hosts 3 --threads 2 \
    --transport tcp --port-base 47200 --faults join --allow-grow \
    --out "$SMOKE_DIR/grid-grown.txt"
diff "$SMOKE_DIR/grid-clean.txt" "$SMOKE_DIR/grid-grown.txt"
echo "    grown (3 -> 4 host) and fault-free labels identical"

echo "==> compressed-vs-raw smoke (cc-lp + louvain, inproc and sim, diffed)"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --seed 1 --out "$SMOKE_DIR/cc-comp.txt"
./target/release/kimbap run cc-lp "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --seed 1 --raw --out "$SMOKE_DIR/cc-raw.txt"
diff "$SMOKE_DIR/cc-comp.txt" "$SMOKE_DIR/cc-raw.txt"
./target/release/kimbap run louvain "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --out "$SMOKE_DIR/lv-comp.txt"
./target/release/kimbap run louvain "$SMOKE_DIR/g.kg" --hosts 3 --threads 2 \
    --raw --out "$SMOKE_DIR/lv-raw.txt"
diff "$SMOKE_DIR/lv-comp.txt" "$SMOKE_DIR/lv-raw.txt"
./target/release/kimbap sim --algo cc-lp --seed 5 --hosts 3 \
    --out "$SMOKE_DIR/sim-cc-comp.txt"
./target/release/kimbap sim --algo cc-lp --seed 5 --hosts 3 --raw \
    --out "$SMOKE_DIR/sim-cc-raw.txt"
diff "$SMOKE_DIR/sim-cc-comp.txt" "$SMOKE_DIR/sim-cc-raw.txt"
./target/release/kimbap sim --algo louvain --seed 5 --hosts 3 \
    --out "$SMOKE_DIR/sim-lv-comp.txt"
./target/release/kimbap sim --algo louvain --seed 5 --hosts 3 --raw \
    --out "$SMOKE_DIR/sim-lv-raw.txt"
diff "$SMOKE_DIR/sim-lv-comp.txt" "$SMOKE_DIR/sim-lv-raw.txt"
echo "    compressed and raw storage tiers produce identical outputs"

echo "==> bytes-per-edge budget (unit-weight R-MAT must compress < 4 B/edge)"
./target/release/kimbap gen --kind rmat --scale 10 --ef 8 --seed 7 \
    --unit-weights --out "$SMOKE_DIR/unit.kg"
stats_line=$(./target/release/kimbap stats "$SMOKE_DIR/unit.kg" | grep '^compressed:')
echo "    $stats_line"
bpe=$(echo "$stats_line" | sed -n 's/.*(\([0-9.]*\) B\/edge.*/\1/p')
ratio=$(echo "$stats_line" | sed -n 's/.* \([0-9.]*\)x smaller.*/\1/p')
awk -v b="$bpe" 'BEGIN { exit !(b != "" && b < 4.0) }' \
    || { echo "bytes/edge budget blown: $bpe >= 4.0" >&2; exit 1; }
awk -v r="$ratio" 'BEGIN { exit !(r != "" && r >= 2.5) }' \
    || { echo "compression ratio too low: ${ratio}x < 2.5x" >&2; exit 1; }

echo "==> bench harness smoke (tiny graph, JSON records)"
scripts/bench.sh --smoke

echo "==> CI green"
