#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lints, and the fixed-seed
# fault-injection matrix (3 plans x 2 algorithms; see
# crates/kimbap/tests/fault_injection.rs::fault_matrix_smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> fault-matrix smoke (fixed seeds)"
cargo test --release -q -p kimbap --test fault_injection fault_matrix_smoke

echo "==> CI green"
