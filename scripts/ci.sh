#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lints, and the fixed-seed
# fault-injection matrix (3 plans x 2 algorithms; see
# crates/kimbap/tests/fault_injection.rs::fault_matrix_smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo clippy --workspace --benches --tests -- -D warnings"
cargo clippy --workspace --benches --tests -- -D warnings

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench -q --workspace --no-run

echo "==> fault-matrix smoke (fixed seeds)"
cargo test --release -q -p kimbap --test fault_injection fault_matrix_smoke

echo "==> bench harness smoke (tiny graph, JSON records)"
scripts/bench.sh --smoke

echo "==> CI green"
