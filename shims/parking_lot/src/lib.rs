//! Offline shim for the `parking_lot` crate (see `shims/README.md`).
//!
//! Provides the only type this workspace uses — [`Mutex`] — implemented
//! over `std::sync::Mutex`. Unlike std, `parking_lot` mutexes do not
//! poison, so the shim swallows poison errors by taking the inner value.

use std::fmt;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never panics on
    /// poison: a poisoned std mutex is treated as unlocked data.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }
}
