//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! A deterministic subset of the proptest API: strategies are value
//! generators driven by a per-test seeded RNG (seed = hash of the test's
//! module path + name), and `proptest!` runs each property for
//! `ProptestConfig::cases` generated inputs. No shrinking, no persistence
//! of failing cases — a failing case panics through the ordinary
//! `assert!` machinery with the generated values in scope.

/// Configuration and RNG plumbing, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many cases `proptest!` runs per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next() % n
        }
    }

    /// FNV-1a hash of a string, for deriving per-test seeds from names.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type. The result is cheaply cloneable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A weighted choice between erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi - lo) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for [`vec`]: `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A strategy producing `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` paths available through the prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each property fn inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __rng = $crate::test_runner::TestRng::deterministic(__seed);
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg =
                    $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::test_runner::TestRng::deterministic(5);
        let ones = (0..1000)
            .filter(|_| Strategy::generate(&s, &mut rng) == 1)
            .count();
        assert!(ones > 800, "ones: {ones}");
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = prop::collection::vec(0u8..10, 2..6);
        let mut rng = crate::test_runner::TestRng::deterministic(6);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro handles metas, multiple args, and trailing commas.
        #[test]
        fn macro_roundtrip(
            a in 0u64..100,
            b in prop::bool::ANY,
            pair in (1usize..4, Just(7i32)),
        ) {
            prop_assert!(a < 100);
            prop_assert_eq!(pair.1, 7, "b was {}", b);
        }
    }
}
