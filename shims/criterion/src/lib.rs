//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace's benches use: benchmark groups,
//! `iter` / `iter_batched` / `iter_custom`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical sampling
//! it runs a small fixed number of iterations and prints mean ns/iter —
//! enough to smoke-run every bench target and eyeball relative costs, not
//! to publish numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per measurement. Small: the shim is a smoke runner.
const ITERS: u64 = 10;

/// The benchmark driver handle passed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _c: self }
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = (b.elapsed.as_nanos() as u64).checked_div(b.iters).unwrap_or(0);
        println!("  {id}: {per_iter} ns/iter ({} iters)", b.iters);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; the shim sets up per iteration
/// regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timer handle given to the measured closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed += t.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t.elapsed();
        }
        self.iters += ITERS;
    }

    /// Lets `routine` time itself: it receives an iteration count and
    /// returns the total elapsed time for that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed += routine(ITERS);
        self.iters += ITERS;
    }
}

/// Bundles bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
