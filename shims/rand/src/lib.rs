//! Offline shim for the `rand` crate, v0.9 API subset (see
//! `shims/README.md`).
//!
//! Implements exactly what this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::{random, random_range}` for
//! `f64`/unsigned integer ranges. The generator is splitmix64 — not the
//! real `StdRng`'s ChaCha12, but deterministic per seed with good 64-bit
//! avalanche, which is all the synthetic graph generators need.

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNGs, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types samplable uniformly over their whole domain via `Rng::random`.
pub trait Random {
    /// Draws one value from `rng`.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain 64-bit range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample over `T`'s whole domain.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele et al.), public-domain reference constants.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let a: u64 = rng.random_range(1..=8);
            assert!((1..=8).contains(&a));
            let b: u32 = rng.random_range(0..17u32);
            assert!(b < 17);
        }
    }

    #[test]
    fn roughly_uniform_quadrants() {
        // The R-MAT generator cuts [0,1) at fixed probabilities; make sure
        // the f64 stream is not grossly skewed.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let low = (0..n).filter(|_| rng.random::<f64>() < 0.5).count();
        assert!((4000..6000).contains(&low), "low half: {low}");
    }
}
