//! Offline stub for the `bytes` crate (see `shims/README.md`).
//!
//! `kimbap-comm` declares this dependency but does not use it; the wire
//! format is hand-rolled over `Vec<u8>`. The stub exists only so the
//! manifest resolves without registry access.
