//! Offline shim for the `crossbeam` crate (see `shims/README.md`).
//!
//! Provides `channel::{bounded, Sender, Receiver}` over
//! `std::sync::mpsc::sync_channel`. The std receiver is `!Sync`, so the
//! shim wraps it in a mutex; this workspace only ever receives from one
//! thread at a time per receiver, so the lock is uncontended.

/// Multi-producer bounded channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;

    /// Error returned when the receiving side has disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is accepted (rendezvous when the
        /// capacity is zero) or the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv().map_err(|_| RecvError)
        }
    }

    /// Creates a bounded channel of the given capacity. Capacity zero is a
    /// rendezvous channel: each send blocks until a receiver takes it.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn rendezvous_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(0);
        let t = std::thread::spawn(move || tx.send(7));
        assert_eq!(rx.recv(), Ok(7));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}
